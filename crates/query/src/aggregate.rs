//! Group-by aggregation of a subspace along a join path.
//!
//! Given a fact-row set DS′, a join path to a dimension table, and a
//! candidate group-by attribute, these functions produce the aggregation
//! series that roll-up partitioning (§5.2) compares between DS′ and
//! RUP(DS′). Both categorical domains (dictionary codes) and numerical
//! domains (bucketized into *basic intervals*, §5.2.2) are supported.

use std::collections::HashMap;

use kdap_warehouse::{ColRef, Measure, TableId, Warehouse};

use crate::bitmap::RowSet;
use crate::error::QueryError;
use crate::exec::{chunk_ranges, par_map, ExecConfig};
use crate::path::JoinPath;
use crate::semijoin::JoinIndex;

/// Runs a chunked aggregation: polls governance per chunk (a single
/// branch when ungoverned), then evaluates the fixed chunk ranges either
/// serially or across `exec`'s workers. Both arms chunk identically and
/// merge happens in the caller in chunk order, so results never depend on
/// the thread count.
fn run_chunked<R: Send>(
    exec: &ExecConfig,
    stage: &'static str,
    nwords: usize,
    accumulate: impl Fn(std::ops::Range<usize>) -> R + Sync,
) -> Result<Vec<R>, QueryError> {
    let ranges = chunk_ranges(nwords, AGG_CHUNK_WORDS);
    let nchunks = ranges.len() as u64;
    let checked = |i: usize, r: std::ops::Range<usize>| {
        exec.check_at(stage, i as u64, nchunks)?;
        Ok::<_, QueryError>(accumulate(r))
    };
    if exec.is_serial() || nwords < 2 * AGG_CHUNK_WORDS {
        ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| checked(i, r))
            .collect()
    } else {
        par_map(exec, &ranges, |i, r| checked(i, r.clone()))
            .into_iter()
            .collect()
    }
}

/// Bitmap words per parallel aggregation chunk (8192 rows). Small enough
/// that even the 60k-fact synthetic warehouse splits into several chunks;
/// chunking depends only on the universe size, so chunked results are
/// identical for every thread count ≥ 2.
pub(crate) const AGG_CHUNK_WORDS: usize = 128;

/// Aggregation function over the measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of the measure.
    Sum,
    /// Count of contributing fact points.
    Count,
    /// Arithmetic mean of the measure.
    Avg,
    /// Minimum measure value.
    Min,
    /// Maximum measure value.
    Max,
}

/// Streaming accumulator for one group.
#[derive(Debug, Clone, Copy)]
pub struct Accumulator {
    /// Running sum.
    pub sum: f64,
    /// Number of values fed.
    pub count: u64,
    /// Smallest value seen (+∞ when empty).
    pub min: f64,
    /// Largest value seen (−∞ when empty).
    pub max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Accumulator {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Accumulator {
    /// Feeds one measure value.
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another accumulator into this one. Parallel kernels build one
    /// accumulator per chunk and merge them in chunk order.
    pub fn merge(&mut self, other: &Accumulator) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Final aggregate under `func`.
    ///
    /// Empty groups follow SQL semantics: `SUM`/`COUNT` yield 0 (what the
    /// score formulas expect for missing segments), while `AVG`/`MIN`/`MAX`
    /// are undefined and yield NaN — surfacing 0.0 there would fabricate a
    /// measure value that never occurred. Callers that need to distinguish
    /// "no rows" explicitly should use [`Accumulator::finish_opt`].
    pub fn finish(&self, func: AggFunc) -> f64 {
        match func {
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as f64,
            _ if self.count == 0 => f64::NAN,
            AggFunc::Avg => self.sum / self.count as f64,
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
        }
    }

    /// Like [`Accumulator::finish`], but reports an empty group as `None`
    /// for every function (including `SUM`/`COUNT`, whose 0 is otherwise
    /// indistinguishable from a real aggregate of 0).
    pub fn finish_opt(&self, func: AggFunc) -> Option<f64> {
        (self.count > 0).then(|| self.finish(func))
    }
}

/// Aggregate of the measure over an entire row set. Iterates via the
/// word-skipping bitmap iterator, so sparse subspaces cost time
/// proportional to their occupied words.
pub fn aggregate_total(wh: &Warehouse, measure: &Measure, rows: &RowSet, func: AggFunc) -> f64 {
    // A serial ungoverned config cannot breach any limit.
    aggregate_total_exec(wh, measure, rows, func, &ExecConfig::serial()).unwrap_or(f64::NAN)
}

/// [`aggregate_total`] fanned out over `exec`'s workers: each worker
/// accumulates a fixed word-range chunk, and the per-chunk accumulators
/// are merged in chunk order. Governance (deadline / cancellation) is
/// polled once per chunk.
pub fn aggregate_total_exec(
    wh: &Warehouse,
    measure: &Measure,
    rows: &RowSet,
    func: AggFunc,
    exec: &ExecConfig,
) -> Result<f64, QueryError> {
    let accumulate = |r: std::ops::Range<usize>| {
        let mut acc = Accumulator::default();
        rows.for_each_in_word_range(r, |row| {
            if let Some(v) = wh.eval_measure(measure, row) {
                acc.add(v);
            }
        });
        acc
    };
    // Fixed chunk boundaries and chunk-order merging in BOTH arms: the
    // result depends only on the data, never on the thread count, so
    // serial and parallel sessions render byte-identical output.
    let partials = run_chunked(exec, "aggregate_total", rows.n_words(), accumulate)?;
    let mut total = Accumulator::default();
    for p in &partials {
        total.merge(p);
    }
    Ok(total.finish(func))
}

/// Groups `rows` (origin-table rows) by the dictionary code of `attr`
/// reached via `path`, aggregating the measure. Rows with NULL joins or
/// NULL attribute values are skipped.
#[allow(clippy::too_many_arguments)]
pub fn group_by_categorical(
    wh: &Warehouse,
    idx: &JoinIndex,
    origin: TableId,
    path: &JoinPath,
    attr: ColRef,
    rows: &RowSet,
    measure: &Measure,
    func: AggFunc,
) -> HashMap<u32, f64> {
    group_by_categorical_exec(
        wh,
        idx,
        origin,
        path,
        attr,
        rows,
        measure,
        func,
        &ExecConfig::serial(),
    )
    // A serial ungoverned config cannot breach any limit.
    .unwrap_or_default()
}

/// [`group_by_categorical`] fanned out over `exec`'s workers: each worker
/// builds group accumulators for a fixed word-range chunk of the bitmap,
/// and the per-chunk maps are merged in chunk order. Governance is polled
/// once per chunk.
#[allow(clippy::too_many_arguments)]
pub fn group_by_categorical_exec(
    wh: &Warehouse,
    idx: &JoinIndex,
    origin: TableId,
    path: &JoinPath,
    attr: ColRef,
    rows: &RowSet,
    measure: &Measure,
    func: AggFunc,
    exec: &ExecConfig,
) -> Result<HashMap<u32, f64>, QueryError> {
    let mapper = idx.row_mapper(wh, origin, path);
    let col = wh.column(attr);
    let accumulate = |range: std::ops::Range<usize>| {
        let mut groups: HashMap<u32, Accumulator> = HashMap::new();
        rows.for_each_in_word_range(range, |row| {
            let Some(target_row) = mapper[row] else {
                return;
            };
            let Some(code) = col.get_code(target_row as usize) else {
                return;
            };
            if let Some(v) = wh.eval_measure(measure, row) {
                groups.entry(code).or_default().add(v);
            }
        });
        groups
    };
    // Both arms chunk identically and merge in chunk order, so results
    // never depend on the thread count (per-code accumulators make the
    // within-chunk map iteration order irrelevant).
    let partials = run_chunked(exec, "group_by", rows.n_words(), accumulate)?;
    let mut merged: HashMap<u32, Accumulator> = HashMap::new();
    for partial in partials {
        for (code, acc) in partial {
            merged.entry(code).or_default().merge(&acc);
        }
    }
    Ok(merged
        .into_iter()
        .map(|(code, acc)| (code, acc.finish(func)))
        .collect())
}

/// Partitioning of a numerical domain into basic intervals.
#[derive(Debug, Clone, PartialEq)]
pub enum Bucketizer {
    /// `n` equal-width buckets over `[min, max]`.
    EqualWidth {
        /// Domain minimum (inclusive).
        min: f64,
        /// Domain maximum (inclusive).
        max: f64,
        /// Bucket count.
        n: usize,
    },
    /// One bucket per distinct value (the paper's *ground truth*
    /// partitioning in §6.4). Values must be sorted and deduplicated.
    Distinct {
        /// The sorted distinct values.
        values: Vec<f64>,
    },
}

impl Bucketizer {
    /// Equal-width bucketizer spanning the given values.
    pub fn equal_width(values: impl IntoIterator<Item = f64>, n: usize) -> Option<Self> {
        assert!(n > 0, "bucket count must be positive");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut any = false;
        for v in values {
            if v.is_finite() {
                any = true;
                min = min.min(v);
                max = max.max(v);
            }
        }
        any.then_some(Bucketizer::EqualWidth { min, max, n })
    }

    /// One-bucket-per-distinct-value partitioning.
    pub fn per_distinct(values: impl IntoIterator<Item = f64>) -> Option<Self> {
        // Normalize -0.0 to 0.0 so total_cmp ordering matches value
        // equality for every finite input.
        let mut vals: Vec<f64> = values
            .into_iter()
            .filter(|v| v.is_finite())
            .map(|v| if v == 0.0 { 0.0 } else { v })
            .collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        Some(Bucketizer::Distinct { values: vals })
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        match self {
            Bucketizer::EqualWidth { n, .. } => *n,
            Bucketizer::Distinct { values } => values.len(),
        }
    }

    /// The bucket of a value, or `None` when it falls outside the domain.
    pub fn bucket_of(&self, v: f64) -> Option<usize> {
        if !v.is_finite() {
            return None;
        }
        match self {
            Bucketizer::EqualWidth { min, max, n } => {
                if v < *min || v > *max {
                    return None;
                }
                if max == min {
                    return Some(0);
                }
                let frac = (v - min) / (max - min);
                Some(((frac * *n as f64) as usize).min(n - 1))
            }
            Bucketizer::Distinct { values } => {
                let v = if v == 0.0 { 0.0 } else { v };
                values.binary_search_by(|x| x.total_cmp(&v)).ok()
            }
        }
    }

    /// Human-readable bounds of bucket `i` (used to render numerical facet
    /// entries like `323 – 470`).
    pub fn bounds(&self, i: usize) -> (f64, f64) {
        match self {
            Bucketizer::EqualWidth { min, max, n } => {
                let width = (max - min) / *n as f64;
                (min + width * i as f64, min + width * (i + 1) as f64)
            }
            Bucketizer::Distinct { values } => (values[i], values[i]),
        }
    }
}

/// Groups `rows` by bucketized numeric value of `attr` via `path`,
/// aggregating the measure. Returns one aggregate per bucket (0 for empty
/// buckets).
#[allow(clippy::too_many_arguments)]
pub fn group_by_buckets(
    wh: &Warehouse,
    idx: &JoinIndex,
    origin: TableId,
    path: &JoinPath,
    attr: ColRef,
    rows: &RowSet,
    measure: &Measure,
    func: AggFunc,
    buckets: &Bucketizer,
) -> Vec<f64> {
    group_by_buckets_exec(
        wh,
        idx,
        origin,
        path,
        attr,
        rows,
        measure,
        func,
        buckets,
        &ExecConfig::serial(),
    )
    // A serial ungoverned config cannot breach any limit.
    .unwrap_or_default()
}

/// [`group_by_buckets`] fanned out over `exec`'s workers: each worker
/// fills a bucket-accumulator array for a fixed word-range chunk, and the
/// per-chunk arrays are merged in chunk order. Governance is polled once
/// per chunk and each chunk's bucket array is charged to the memory
/// budget.
#[allow(clippy::too_many_arguments)]
pub fn group_by_buckets_exec(
    wh: &Warehouse,
    idx: &JoinIndex,
    origin: TableId,
    path: &JoinPath,
    attr: ColRef,
    rows: &RowSet,
    measure: &Measure,
    func: AggFunc,
    buckets: &Bucketizer,
    exec: &ExecConfig,
) -> Result<Vec<f64>, QueryError> {
    let mapper = idx.row_mapper(wh, origin, path);
    let col = wh.column(attr);
    let chunk_bytes = (buckets.n_buckets() * std::mem::size_of::<Accumulator>()) as u64;
    let accumulate = |range: std::ops::Range<usize>| {
        let mut accs = vec![Accumulator::default(); buckets.n_buckets()];
        rows.for_each_in_word_range(range, |row| {
            let Some(target_row) = mapper[row] else {
                return;
            };
            let Some(v) = col.get_float(target_row as usize) else {
                return;
            };
            let Some(b) = buckets.bucket_of(v) else {
                return;
            };
            if let Some(m) = wh.eval_measure(measure, row) {
                accs[b].add(m);
            }
        });
        accs
    };
    // Both arms chunk identically and merge in chunk order, so results
    // never depend on the thread count.
    let partials = run_chunked(exec, "group_by", rows.n_words(), |r| {
        exec.charge("group_by", chunk_bytes).map(|()| accumulate(r))
    })?
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let mut merged = vec![Accumulator::default(); buckets.n_buckets()];
    for partial in &partials {
        for (m, p) in merged.iter_mut().zip(partial) {
            m.merge(p);
        }
    }
    Ok(merged.iter().map(|a| a.finish(func)).collect())
}

/// Collects the numeric values of `attr` observed across `rows` via
/// `path` (the domain the bucketizer spans — "the set of all distinct
/// values projected from DS′", §5.2).
pub fn project_numeric(
    wh: &Warehouse,
    idx: &JoinIndex,
    origin: TableId,
    path: &JoinPath,
    attr: ColRef,
    rows: &RowSet,
) -> Vec<f64> {
    let mapper = idx.row_mapper(wh, origin, path);
    let col = wh.column(attr);
    let mut out = Vec::new();
    for row in rows.iter() {
        if let Some(target_row) = mapper[row] {
            if let Some(v) = col.get_float(target_row as usize) {
                out.push(v);
            }
        }
    }
    out
}

/// Collects the distinct dictionary codes of `attr` observed across
/// `rows` via `path` (DOM(DS′, attr), §5.2).
pub fn project_categorical(
    wh: &Warehouse,
    idx: &JoinIndex,
    origin: TableId,
    path: &JoinPath,
    attr: ColRef,
    rows: &RowSet,
) -> Vec<u32> {
    let mapper = idx.row_mapper(wh, origin, path);
    let col = wh.column(attr);
    let mut seen = std::collections::HashSet::new();
    for row in rows.iter() {
        if let Some(target_row) = mapper[row] {
            if let Some(code) = col.get_code(target_row as usize) {
                seen.insert(code);
            }
        }
    }
    let mut out: Vec<u32> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdap_warehouse::{ValueType, WarehouseBuilder};

    fn store_sales() -> Warehouse {
        let mut b = WarehouseBuilder::new();
        b.table(
            "SALES",
            &[
                ("Id", ValueType::Int, false),
                ("SKey", ValueType::Int, false),
                ("Qty", ValueType::Int, false),
                ("Price", ValueType::Float, false),
            ],
        )
        .unwrap();
        b.table(
            "STORE",
            &[
                ("SKey", ValueType::Int, false),
                ("City", ValueType::Str, true),
                ("SqFt", ValueType::Float, false),
            ],
        )
        .unwrap();
        b.rows(
            "STORE",
            vec![
                vec![1i64.into(), "Columbus".into(), 100.0.into()],
                vec![2i64.into(), "Seattle".into(), 200.0.into()],
                vec![3i64.into(), "Columbus".into(), 300.0.into()],
            ],
        )
        .unwrap();
        b.rows(
            "SALES",
            vec![
                vec![0i64.into(), 1i64.into(), 1i64.into(), 10.0.into()],
                vec![1i64.into(), 1i64.into(), 2i64.into(), 10.0.into()],
                vec![2i64.into(), 2i64.into(), 1i64.into(), 50.0.into()],
                vec![3i64.into(), 3i64.into(), 4i64.into(), 5.0.into()],
            ],
        )
        .unwrap();
        b.edge("SALES.SKey", "STORE.SKey", None, Some("Store"))
            .unwrap();
        b.dimension("Store", &["STORE"], vec![], vec![]).unwrap();
        b.fact("SALES").unwrap();
        b.measure_product("Revenue", "SALES.Price", "SALES.Qty")
            .unwrap();
        b.finish().unwrap()
    }

    fn setup() -> (Warehouse, JoinIndex, JoinPath, Measure) {
        let wh = store_sales();
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let store = wh.table_id("STORE").unwrap();
        let path = crate::path::paths_between(wh.schema(), fact, store, 4).remove(0);
        let measure = wh.schema().measure_by_name("Revenue").unwrap().clone();
        (wh, idx, path, measure)
    }

    #[test]
    fn total_aggregation() {
        let (wh, _, _, measure) = setup();
        let all = RowSet::full(wh.fact_rows());
        assert_eq!(aggregate_total(&wh, &measure, &all, AggFunc::Sum), 100.0);
        assert_eq!(aggregate_total(&wh, &measure, &all, AggFunc::Count), 4.0);
        assert_eq!(aggregate_total(&wh, &measure, &all, AggFunc::Avg), 25.0);
        assert_eq!(aggregate_total(&wh, &measure, &all, AggFunc::Min), 10.0);
        assert_eq!(aggregate_total(&wh, &measure, &all, AggFunc::Max), 50.0);
    }

    #[test]
    fn empty_set_aggregation_semantics() {
        let (wh, _, _, measure) = setup();
        let none = RowSet::empty(wh.fact_rows());
        // SUM/COUNT over nothing are 0, per SQL.
        assert_eq!(aggregate_total(&wh, &measure, &none, AggFunc::Sum), 0.0);
        assert_eq!(aggregate_total(&wh, &measure, &none, AggFunc::Count), 0.0);
        // MIN/MAX/AVG over nothing are undefined — NaN, never a fake 0.0.
        assert!(aggregate_total(&wh, &measure, &none, AggFunc::Min).is_nan());
        assert!(aggregate_total(&wh, &measure, &none, AggFunc::Max).is_nan());
        assert!(aggregate_total(&wh, &measure, &none, AggFunc::Avg).is_nan());
    }

    #[test]
    fn finish_opt_flags_empty_groups() {
        let empty = Accumulator::default();
        assert_eq!(empty.finish_opt(AggFunc::Sum), None);
        assert_eq!(empty.finish_opt(AggFunc::Min), None);
        let mut acc = Accumulator::default();
        acc.add(3.0);
        acc.add(5.0);
        assert_eq!(acc.finish_opt(AggFunc::Sum), Some(8.0));
        assert_eq!(acc.finish_opt(AggFunc::Min), Some(3.0));
        assert_eq!(acc.finish_opt(AggFunc::Max), Some(5.0));
        assert_eq!(acc.finish_opt(AggFunc::Avg), Some(4.0));
        assert_eq!(acc.finish_opt(AggFunc::Count), Some(2.0));
    }

    #[test]
    fn categorical_group_by_city() {
        let (wh, idx, path, measure) = setup();
        let fact = wh.schema().fact_table();
        let attr = wh.col_ref("STORE", "City").unwrap();
        let all = RowSet::full(wh.fact_rows());
        let groups =
            group_by_categorical(&wh, &idx, fact, &path, attr, &all, &measure, AggFunc::Sum);
        let dict = wh.column(attr).dict().unwrap();
        let columbus = dict.code_of("Columbus").unwrap();
        let seattle = dict.code_of("Seattle").unwrap();
        // Columbus: 10 + 20 + 20 = 50; Seattle: 50.
        assert_eq!(groups[&columbus], 50.0);
        assert_eq!(groups[&seattle], 50.0);
    }

    #[test]
    fn categorical_group_by_respects_subspace() {
        let (wh, idx, path, measure) = setup();
        let fact = wh.schema().fact_table();
        let attr = wh.col_ref("STORE", "City").unwrap();
        let subset = RowSet::from_rows(wh.fact_rows(), [0, 2]);
        let groups = group_by_categorical(
            &wh,
            &idx,
            fact,
            &path,
            attr,
            &subset,
            &measure,
            AggFunc::Sum,
        );
        let dict = wh.column(attr).dict().unwrap();
        assert_eq!(groups[&dict.code_of("Columbus").unwrap()], 10.0);
        assert_eq!(groups[&dict.code_of("Seattle").unwrap()], 50.0);
    }

    #[test]
    fn bucketized_group_by_sqft() {
        let (wh, idx, path, measure) = setup();
        let fact = wh.schema().fact_table();
        let attr = wh.col_ref("STORE", "SqFt").unwrap();
        let all = RowSet::full(wh.fact_rows());
        let values = project_numeric(&wh, &idx, fact, &path, attr, &all);
        let buckets = Bucketizer::equal_width(values, 2).unwrap();
        let series = group_by_buckets(
            &wh,
            &idx,
            fact,
            &path,
            attr,
            &all,
            &measure,
            AggFunc::Sum,
            &buckets,
        );
        // Buckets are half-open: [100, 200) holds SqFt=100 (facts 0,1:
        // 10+20); [200, 300] holds SqFt=200 and 300 (facts 2,3: 50+20).
        assert_eq!(series, vec![30.0, 70.0]);
    }

    #[test]
    fn per_distinct_bucketizer_is_exact() {
        let b = Bucketizer::per_distinct([3.0, 1.0, 2.0, 1.0]).unwrap();
        assert_eq!(b.n_buckets(), 3);
        assert_eq!(b.bucket_of(1.0), Some(0));
        assert_eq!(b.bucket_of(3.0), Some(2));
        assert_eq!(b.bucket_of(1.5), None);
        assert_eq!(b.bounds(1), (2.0, 2.0));
    }

    #[test]
    fn equal_width_bucket_edges() {
        let b = Bucketizer::equal_width([0.0, 10.0], 5).unwrap();
        assert_eq!(b.bucket_of(0.0), Some(0));
        assert_eq!(b.bucket_of(10.0), Some(4), "max value lands in last bucket");
        assert_eq!(b.bucket_of(-0.1), None);
        assert_eq!(b.bucket_of(10.1), None);
        assert_eq!(b.bounds(0), (0.0, 2.0));
    }

    #[test]
    fn degenerate_single_value_domain() {
        let b = Bucketizer::equal_width([5.0, 5.0], 3).unwrap();
        assert_eq!(b.bucket_of(5.0), Some(0));
        assert!(Bucketizer::equal_width(std::iter::empty(), 3).is_none());
        assert!(Bucketizer::per_distinct(std::iter::empty()).is_none());
    }

    #[test]
    fn exec_variants_match_serial() {
        // The toy warehouse is one chunk; integer-ish revenues make f64
        // sums exact, so serial and chunked schedules must agree exactly.
        let (wh, idx, path, measure) = setup();
        let fact = wh.schema().fact_table();
        let attr = wh.col_ref("STORE", "City").unwrap();
        let sqft = wh.col_ref("STORE", "SqFt").unwrap();
        let all = RowSet::full(wh.fact_rows());
        let buckets =
            Bucketizer::equal_width(project_numeric(&wh, &idx, fact, &path, sqft, &all), 2)
                .unwrap();
        for threads in [1, 2, 4] {
            let exec = ExecConfig::with_threads(threads);
            assert_eq!(
                aggregate_total_exec(&wh, &measure, &all, AggFunc::Sum, &exec).unwrap(),
                100.0
            );
            let groups = group_by_categorical_exec(
                &wh,
                &idx,
                fact,
                &path,
                attr,
                &all,
                &measure,
                AggFunc::Sum,
                &exec,
            )
            .unwrap();
            assert_eq!(
                groups,
                group_by_categorical(&wh, &idx, fact, &path, attr, &all, &measure, AggFunc::Sum)
            );
            let series = group_by_buckets_exec(
                &wh,
                &idx,
                fact,
                &path,
                sqft,
                &all,
                &measure,
                AggFunc::Sum,
                &buckets,
                &exec,
            )
            .unwrap();
            assert_eq!(series, vec![30.0, 70.0]);
        }
    }

    #[test]
    fn projections() {
        let (wh, idx, path, _) = setup();
        let fact = wh.schema().fact_table();
        let all = RowSet::full(wh.fact_rows());
        let city = wh.col_ref("STORE", "City").unwrap();
        let codes = project_categorical(&wh, &idx, fact, &path, city, &all);
        assert_eq!(codes.len(), 2);
        let sqft = wh.col_ref("STORE", "SqFt").unwrap();
        let vals = project_numeric(&wh, &idx, fact, &path, sqft, &all);
        assert_eq!(vals.len(), 4, "one per fact row");
    }
}
