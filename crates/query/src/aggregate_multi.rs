//! Single-pass multi-aggregate facet kernel.
//!
//! The explore phase (§5) ranks *every* candidate group-by attribute over
//! the chosen subspace and each of its roll-up spaces. Done naively that
//! is one [`group_by_categorical`](crate::group_by_categorical) /
//! [`group_by_buckets`](crate::group_by_buckets) call per attribute per
//! space — each re-scanning the same bitmap, re-deriving the same row
//! mappers, and re-evaluating the measure per row. This module fuses them:
//! **one scan** of the row set feeds the accumulators of *all* facet
//! specs at once, over session-materialized inputs — a [`MeasureVector`]
//! decoded once per subspace and `Arc` row mappers memoized per
//! `(origin, path)` in the [`JoinIndex`](crate::JoinIndex).
//!
//! Low-cardinality categorical attributes accumulate into **dense arrays
//! sized by dictionary cardinality** (`stats[code as usize]`, no hashing);
//! attributes above [`DENSE_GROUP_LIMIT`] fall back to the hash path. The
//! raw [`Accumulator`]s are kept per group, so one scan answers every
//! aggregation function afterwards (e.g. SUM for the series *and* COUNT
//! for bucket occupancy).
//!
//! Parallel execution mirrors the per-facet kernels exactly: the same
//! [`AGG_CHUNK_WORDS`] chunking of the bitmap with per-chunk partials
//! merged in chunk order — in the serial arm too, so results depend only
//! on the data, never on the thread count, and the fused kernel is
//! bit-identical to the per-facet kernels at any thread count
//! (property-tested in `tests/facet_equivalence.rs`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use kdap_warehouse::{ColRef, KernelTier, Measure, Warehouse};

use crate::aggregate::{Accumulator, AggFunc, Bucketizer, AGG_CHUNK_WORDS};
use crate::bitmap::RowSet;
use crate::error::QueryError;
use crate::exec::{chunk_ranges, par_map, ExecConfig};
use crate::kernel::{self, NULL_CODE};

/// Default dictionary-cardinality cutoff for the dense accumulator path.
///
/// Dense arrays cost `cardinality × size_of::<GroupStats>()` per parallel
/// chunk; 4096 groups keep a partial under 200 KiB while covering every
/// dimension attribute of the synthetic warehouses.
pub const DENSE_GROUP_LIMIT: usize = 4096;

/// The measure decoded to a flat `f64` vector, once per fact table.
///
/// [`Warehouse::eval_measure`] walks the measure expression and the
/// column enums per call; facet construction evaluates it for the same
/// rows dozens of times (once per candidate attribute per space). This
/// materializes it once per session: NULL is stored as NaN, so `get`
/// reproduces `eval_measure` exactly for any measure whose non-null
/// values are non-NaN (a NaN stored *in* the data would be conflated
/// with NULL — acceptable, since a NaN measure value is meaningless to
/// every aggregate anyway).
#[derive(Debug, Clone)]
pub struct MeasureVector {
    values: Vec<f64>,
}

impl MeasureVector {
    /// Decodes `measure` for every fact row of `wh`.
    pub fn build(wh: &Warehouse, measure: &Measure) -> Self {
        let values = (0..wh.fact_rows())
            .map(|row| wh.eval_measure(measure, row).unwrap_or(f64::NAN))
            .collect();
        MeasureVector { values }
    }

    /// The measure value of `row`, `None` when NULL.
    #[inline]
    pub fn get(&self, row: usize) -> Option<f64> {
        let v = self.values[row];
        (!v.is_nan()).then_some(v)
    }

    /// Number of fact rows covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// The raw decoded values, one `f64` per fact row with NULL stored as
    /// NaN — the gather source for the batch group-by kernels.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// True when the fact table has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// One group-by requested from the fused scan.
///
/// Every variant that reads an attribute carries its own fact→target row
/// mapper (shared `Arc`s from the session's
/// [`JoinIndex`](crate::JoinIndex) memo), so the scan itself touches no
/// locks and builds no joins.
#[derive(Debug, Clone)]
pub enum FacetSpec {
    /// Group by the dictionary code of a categorical attribute.
    Categorical {
        /// The group-by attribute.
        attr: ColRef,
        /// Fact row → attribute-table row.
        mapper: Arc<Vec<Option<u32>>>,
    },
    /// Group a numerical attribute into basic intervals.
    Buckets {
        /// The group-by attribute.
        attr: ColRef,
        /// Fact row → attribute-table row.
        mapper: Arc<Vec<Option<u32>>>,
        /// The interval partitioning.
        buckets: Bucketizer,
    },
    /// Min/max of a numerical attribute over the rows (the domain a
    /// [`Bucketizer`] needs, without materializing the projection).
    NumericDomain {
        /// The attribute whose domain is measured.
        attr: ColRef,
        /// Fact row → attribute-table row.
        mapper: Arc<Vec<Option<u32>>>,
    },
    /// Total aggregate of the measure over the row set (no grouping).
    Total,
}

/// Accumulated state of one group: the measure accumulator plus a
/// presence count.
///
/// `rows` counts every row whose join reached a non-null attribute value
/// — independent of whether the measure was NULL — which is what domain
/// projection (`DOM(DS′, attr)`, §5.2) observes. `acc.count` only counts
/// rows that contributed a measure value, which is what the per-facet
/// group-by kernels key their result maps by. Both views come out of the
/// same scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupStats {
    /// Measure accumulator over the group's non-null-measure rows.
    pub acc: Accumulator,
    /// Rows that reached the group, measure-null or not.
    pub rows: u64,
}

impl GroupStats {
    fn merge(&mut self, other: &GroupStats) {
        self.acc.merge(&other.acc);
        self.rows += other.rows;
    }
}

/// The result of one [`FacetSpec`] after the fused scan.
#[derive(Debug, Clone)]
pub enum FacetGroups {
    /// Categorical groups in a dense array indexed by dictionary code.
    Dense {
        /// One slot per dictionary code.
        stats: Vec<GroupStats>,
    },
    /// Categorical groups in a hash map (cardinality above the cutoff).
    Sparse {
        /// Group stats keyed by dictionary code.
        stats: HashMap<u32, GroupStats>,
    },
    /// Bucketized numerical groups, one slot per basic interval.
    Buckets {
        /// One slot per bucket.
        stats: Vec<GroupStats>,
    },
    /// Observed numerical domain.
    Domain {
        /// Smallest finite value seen (+∞ when none).
        min: f64,
        /// Largest finite value seen (−∞ when none).
        max: f64,
        /// Whether any finite value was seen.
        any: bool,
    },
    /// Ungrouped total over the row set.
    Total {
        /// The single accumulated group.
        stats: GroupStats,
    },
}

impl FacetGroups {
    /// Empty groups for `spec`; `dense_size` (when set) replaces the column
    /// statistics as the dense-array size for categorical specs — the
    /// stale-statistics simulation hook used by the OOB-promotion tests.
    fn new_for_sized(
        spec: &FacetSpec,
        wh: &Warehouse,
        dense_limit: usize,
        dense_size: Option<usize>,
    ) -> Self {
        match spec {
            FacetSpec::Categorical { attr, .. } => {
                let card = match dense_size {
                    Some(n) => Some(n),
                    None => wh.column(*attr).cardinality(),
                };
                match card.filter(|&c| c <= dense_limit) {
                    Some(card) => FacetGroups::Dense {
                        stats: vec![GroupStats::default(); card],
                    },
                    None => FacetGroups::Sparse {
                        stats: HashMap::new(),
                    },
                }
            }
            FacetSpec::Buckets { buckets, .. } => FacetGroups::Buckets {
                stats: vec![GroupStats::default(); buckets.n_buckets()],
            },
            FacetSpec::NumericDomain { .. } => FacetGroups::Domain {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                any: false,
            },
            FacetSpec::Total => FacetGroups::Total {
                stats: GroupStats::default(),
            },
        }
    }

    /// Folds another partial of the same shape into this one. Callers
    /// merge per-chunk partials in chunk order, which keeps every
    /// group's accumulation order identical to the serial scan.
    ///
    /// Categorical partials may arrive in *mixed* shapes: a chunk that
    /// saw a dictionary code beyond the dense array (stale statistics)
    /// falls back to the hash path mid-scan, so one partial can be
    /// `Sparse` while its siblings stayed `Dense`. The merge promotes
    /// itself to `Sparse` in that case — code-keyed accumulation is
    /// shape-independent, so the result is unchanged.
    fn merge(&mut self, other: &FacetGroups) {
        if matches!(
            (&*self, other),
            (FacetGroups::Dense { .. }, FacetGroups::Sparse { .. })
        ) {
            promote_to_sparse(self);
        }
        match (self, other) {
            (FacetGroups::Dense { stats }, FacetGroups::Dense { stats: os }) => {
                for (m, p) in stats.iter_mut().zip(os) {
                    if p.rows > 0 {
                        m.merge(p);
                    }
                }
            }
            (FacetGroups::Sparse { stats }, FacetGroups::Sparse { stats: os }) => {
                for (code, p) in os {
                    stats.entry(*code).or_default().merge(p);
                }
            }
            (FacetGroups::Sparse { stats }, FacetGroups::Dense { stats: os }) => {
                for (code, p) in os.iter().enumerate() {
                    if p.rows > 0 {
                        stats.entry(code as u32).or_default().merge(p);
                    }
                }
            }
            (FacetGroups::Buckets { stats }, FacetGroups::Buckets { stats: os }) => {
                for (m, p) in stats.iter_mut().zip(os) {
                    m.merge(p);
                }
            }
            (
                FacetGroups::Domain { min, max, any },
                FacetGroups::Domain {
                    min: omin,
                    max: omax,
                    any: oany,
                },
            ) => {
                *min = min.min(*omin);
                *max = max.max(*omax);
                *any |= oany;
            }
            (FacetGroups::Total { stats }, FacetGroups::Total { stats: os }) => {
                stats.merge(os);
            }
            _ => unreachable!("partials of one spec share a shape"),
        }
    }

    /// True when this spec ran on the dense array path.
    pub fn is_dense(&self) -> bool {
        matches!(self, FacetGroups::Dense { .. })
    }

    /// Number of non-empty groups (categorical: codes present; buckets:
    /// occupied intervals; total: 0 or 1).
    pub fn n_groups(&self) -> usize {
        match self {
            FacetGroups::Dense { stats } => stats.iter().filter(|g| g.rows > 0).count(),
            FacetGroups::Sparse { stats } => stats.len(),
            FacetGroups::Buckets { stats } => stats.iter().filter(|g| g.acc.count > 0).count(),
            FacetGroups::Domain { any, .. } => usize::from(*any),
            FacetGroups::Total { stats } => usize::from(stats.rows > 0),
        }
    }

    /// Sorted dictionary codes present in the rows — exactly
    /// [`project_categorical`](crate::project_categorical) (presence is a
    /// reached non-null attribute value; the measure may be NULL).
    pub fn domain(&self) -> Vec<u32> {
        match self {
            FacetGroups::Dense { stats } => stats
                .iter()
                .enumerate()
                .filter(|(_, g)| g.rows > 0)
                .map(|(code, _)| code as u32)
                .collect(),
            FacetGroups::Sparse { stats } => {
                let mut codes: Vec<u32> = stats
                    .iter()
                    .filter(|(_, g)| g.rows > 0)
                    .map(|(code, _)| *code)
                    .collect();
                codes.sort_unstable();
                codes
            }
            _ => Vec::new(),
        }
    }

    /// Finished categorical aggregates keyed by code — exactly the map
    /// [`group_by_categorical`](crate::group_by_categorical) returns
    /// (groups whose every measure value was NULL are absent).
    pub fn to_map(&self, func: AggFunc) -> HashMap<u32, f64> {
        match self {
            FacetGroups::Dense { stats } => stats
                .iter()
                .enumerate()
                .filter(|(_, g)| g.acc.count > 0)
                .map(|(code, g)| (code as u32, g.acc.finish(func)))
                .collect(),
            FacetGroups::Sparse { stats } => stats
                .iter()
                .filter(|(_, g)| g.acc.count > 0)
                .map(|(code, g)| (*code, g.acc.finish(func)))
                .collect(),
            _ => HashMap::new(),
        }
    }

    /// Finished per-bucket aggregates — exactly the series
    /// [`group_by_buckets`](crate::group_by_buckets) returns.
    pub fn to_series(&self, func: AggFunc) -> Vec<f64> {
        match self {
            FacetGroups::Buckets { stats } => stats.iter().map(|g| g.acc.finish(func)).collect(),
            _ => Vec::new(),
        }
    }

    /// An equal-width bucketizer over the observed numerical domain —
    /// exactly `Bucketizer::equal_width(project_numeric(..), n)`.
    pub fn bucketizer(&self, n: usize) -> Option<Bucketizer> {
        match self {
            FacetGroups::Domain { min, max, any } => any.then_some(Bucketizer::EqualWidth {
                min: *min,
                max: *max,
                n,
            }),
            _ => None,
        }
    }

    /// Finished total aggregate — exactly
    /// [`aggregate_total`](crate::aggregate_total) over the same rows.
    pub fn total(&self, func: AggFunc) -> f64 {
        match self {
            FacetGroups::Total { stats } => stats.acc.finish(func),
            _ => f64::NAN,
        }
    }

    /// Heap bytes of the group state — what the memory budget charges.
    pub(crate) fn heap_bytes(&self) -> u64 {
        let unit = std::mem::size_of::<GroupStats>() as u64;
        match self {
            FacetGroups::Dense { stats } | FacetGroups::Buckets { stats } => {
                stats.len() as u64 * unit
            }
            // Hash maps grow with the data; charge the entries themselves
            // (bucket overhead is uncharged — see DESIGN.md).
            FacetGroups::Sparse { stats } => stats.len() as u64 * (unit + 4),
            FacetGroups::Domain { .. } | FacetGroups::Total { .. } => 0,
        }
    }
}

/// Converts a dense categorical partial to the hash representation,
/// carrying every touched group over. Used when a dictionary code walks
/// past the dense array (stale statistics) and by mixed-shape merges.
fn promote_to_sparse(g: &mut FacetGroups) {
    if let FacetGroups::Dense { stats } = g {
        let sparse: HashMap<u32, GroupStats> = stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.rows > 0)
            .map(|(code, s)| (code as u32, *s))
            .collect();
        *g = FacetGroups::Sparse { stats: sparse };
    }
}

/// One categorical accumulation step with the dense bounds check: a code
/// beyond the dense array (possible only with stale column statistics)
/// promotes the partial to the hash path instead of indexing out of
/// bounds, and bumps `oob`.
#[inline]
fn update_categorical(g: &mut FacetGroups, code: u32, measure: Option<f64>, oob: &mut u64) {
    if let FacetGroups::Dense { stats } = g {
        if let Some(s) = stats.get_mut(code as usize) {
            s.rows += 1;
            if let Some(v) = measure {
                s.acc.add(v);
            }
            return;
        }
        *oob += 1;
        promote_to_sparse(g);
    }
    let FacetGroups::Sparse { stats } = g else {
        unreachable!("categorical groups are dense or sparse")
    };
    let s = stats.entry(code).or_default();
    s.rows += 1;
    if let Some(v) = measure {
        s.acc.add(v);
    }
}

/// Serial fused scan with the default dense cutoff; see
/// [`multi_group_by_exec`].
pub fn multi_group_by(
    wh: &Warehouse,
    specs: &[FacetSpec],
    rows: &RowSet,
    mv: &MeasureVector,
) -> Result<Vec<FacetGroups>, QueryError> {
    multi_group_by_exec(
        wh,
        specs,
        rows,
        mv,
        &ExecConfig::serial(),
        DENSE_GROUP_LIMIT,
    )
}

/// One predecoded attribute column for the batch scan path.
enum DecodedCol {
    /// Total spec, or a column the spec's accessor cannot decode (e.g. a
    /// categorical spec over a numeric column) — the batch path skips
    /// every row, exactly like the per-row accessors returning `None`.
    Missing,
    /// Dictionary codes per attribute-table row, NULL as [`NULL_CODE`].
    Codes(Vec<u32>),
    /// Float values per attribute-table row, NULL as NaN.
    Floats(Vec<f64>),
}

thread_local! {
    /// Per-worker batch buffers: selected row indices and their gathered
    /// measure values for one chunk (≤ 8192 rows = 96 KiB), reused across
    /// chunks so the steady-state scan allocates nothing.
    static BATCH_SCRATCH: RefCell<(Vec<u32>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Batch categorical accumulation over one chunk's gathered rows, with
/// the same mid-scan dense→sparse promotion as [`update_categorical`]:
/// the dense loop runs bounds-checked, and the first out-of-range code
/// (stale statistics) promotes the partial and resumes sparsely from the
/// same row.
fn batch_categorical(
    g: &mut FacetGroups,
    codes: &[u32],
    mapper: &[Option<u32>],
    row_buf: &[u32],
    meas_buf: &[f64],
    oob: &mut u64,
) {
    let len = row_buf.len();
    let mut k = 0;
    loop {
        match g {
            FacetGroups::Dense { stats } => {
                let mut hit_oob = false;
                while k < len {
                    let row = row_buf[k] as usize;
                    let Some(t) = mapper[row] else {
                        k += 1;
                        continue;
                    };
                    let code = codes[t as usize];
                    if code == NULL_CODE {
                        k += 1;
                        continue;
                    }
                    if let Some(s) = stats.get_mut(code as usize) {
                        s.rows += 1;
                        let m = meas_buf[k];
                        if !m.is_nan() {
                            s.acc.add(m);
                        }
                        k += 1;
                    } else {
                        hit_oob = true;
                        break;
                    }
                }
                if !hit_oob {
                    return;
                }
                *oob += 1;
                promote_to_sparse(g);
                // Row k is re-handled by the sparse arm.
            }
            FacetGroups::Sparse { stats } => {
                while k < len {
                    let row = row_buf[k] as usize;
                    let m = meas_buf[k];
                    k += 1;
                    let Some(t) = mapper[row] else {
                        continue;
                    };
                    let code = codes[t as usize];
                    if code == NULL_CODE {
                        continue;
                    }
                    let s = stats.entry(code).or_default();
                    s.rows += 1;
                    if !m.is_nan() {
                        s.acc.add(m);
                    }
                }
                return;
            }
            _ => unreachable!("categorical groups are dense or sparse"),
        }
    }
}

/// Scans `rows` once, feeding every spec's accumulators per row.
///
/// Returns one [`FacetGroups`] per spec, in spec order. Categorical specs
/// whose dictionary cardinality is at most `dense_limit` use dense
/// arrays; larger ones fall back to hash maps. A dictionary code that
/// nonetheless walks past a dense array (stale statistics) promotes that
/// spec to the hash path mid-scan instead of indexing out of bounds.
/// Parallel runs chunk the bitmap exactly like the per-facet kernels
/// ([`AGG_CHUNK_WORDS`] words, serial below two chunks) and merge
/// partials in chunk order, so output is independent of the thread count.
///
/// When the session's [`ExecConfig::kernel_tier`] is above Scalar, each
/// chunk runs as a **batch**: the selected row indices are collected into
/// a reusable buffer, their measure values gathered in one vectorized
/// pass against predecoded attribute columns (bulk-unpacked through the
/// dispatched kernels), and the per-spec accumulation runs as a tight
/// loop per spec over those buffers. Because every gathered row is
/// visited in the same ascending order and floating-point accumulation
/// stays strictly sequential per group, the batch path is bit-identical
/// to the per-row reference path (`force_scalar` / `KDAP_NO_SIMD`),
/// which `tests/simd_equivalence.rs` proves.
///
/// Governance (when `exec` carries a [`crate::QueryContext`]) is polled
/// per chunk, and every chunk's accumulator allocation is charged to the
/// memory budget; breaches return [`QueryError::Governed`].
pub fn multi_group_by_exec(
    wh: &Warehouse,
    specs: &[FacetSpec],
    rows: &RowSet,
    mv: &MeasureVector,
    exec: &ExecConfig,
    dense_limit: usize,
) -> Result<Vec<FacetGroups>, QueryError> {
    multi_group_by_exec_sized(wh, specs, rows, mv, exec, dense_limit, None)
}

/// [`multi_group_by_exec`] with an explicit dense-array size override for
/// categorical specs, simulating stale column statistics (dense arrays
/// smaller than the live code range) so tests can drive the mid-scan
/// OOB promotion path deterministically. Not part of the stable API.
#[doc(hidden)]
pub fn multi_group_by_exec_sized(
    wh: &Warehouse,
    specs: &[FacetSpec],
    rows: &RowSet,
    mv: &MeasureVector,
    exec: &ExecConfig,
    dense_limit: usize,
    dense_size: Option<usize>,
) -> Result<Vec<FacetGroups>, QueryError> {
    exec.check("multi_group_by")?;
    let cols: Vec<_> = specs
        .iter()
        .map(|s| match s {
            FacetSpec::Categorical { attr, .. }
            | FacetSpec::Buckets { attr, .. }
            | FacetSpec::NumericDomain { attr, .. } => Some(wh.column(*attr)),
            FacetSpec::Total => None,
        })
        .collect();
    // Tier dispatch: the per-row closure chain below is the retained
    // scalar reference; everything else batches. Universes past u32 row
    // indices keep the reference path (gather buffers index with u32).
    let tier = exec.kernel_tier();
    let use_batch = !tier.is_scalar() && rows.universe() <= u32::MAX as usize;
    // Predecode each spec's attribute column once per scan (codes with a
    // NULL sentinel, floats with NaN) so chunk workers only gather.
    let decoded: Vec<DecodedCol> = if use_batch {
        let mut bytes = 0u64;
        let decoded: Vec<DecodedCol> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| match s {
                FacetSpec::Categorical { .. } => {
                    let mut codes = Vec::new();
                    // Infallible for Str columns; numeric columns yield
                    // Missing, matching get_code's permanent None.
                    if cols[i].is_some_and(|c| c.unpack_codes_into(&mut codes)) {
                        bytes += codes.len() as u64 * 4;
                        DecodedCol::Codes(codes)
                    } else {
                        DecodedCol::Missing
                    }
                }
                FacetSpec::Buckets { .. } | FacetSpec::NumericDomain { .. } => {
                    let mut vals = Vec::new();
                    if cols[i].is_some_and(|c| c.unpack_floats_into(&mut vals)) {
                        bytes += vals.len() as u64 * 8;
                        DecodedCol::Floats(vals)
                    } else {
                        DecodedCol::Missing
                    }
                }
                FacetSpec::Total => DecodedCol::Missing,
            })
            .collect();
        exec.charge("multi_group_by", bytes)?;
        decoded
    } else {
        Vec::new()
    };
    let accumulate_batch = |range: std::ops::Range<usize>| {
        let mut groups: Vec<FacetGroups> = specs
            .iter()
            .map(|s| FacetGroups::new_for_sized(s, wh, dense_limit, dense_size))
            .collect();
        let mut oob = 0u64;
        BATCH_SCRATCH.with(|scratch| {
            let (row_buf, meas_buf) = &mut *scratch.borrow_mut();
            rows.collect_rows_in_word_range(range, row_buf);
            if row_buf.is_empty() {
                return;
            }
            meas_buf.clear();
            meas_buf.resize(row_buf.len(), 0.0);
            kernel::gather_f64(mv.as_slice(), row_buf, meas_buf);
            for (i, spec) in specs.iter().enumerate() {
                let g = &mut groups[i];
                match (spec, &decoded[i]) {
                    (FacetSpec::Categorical { mapper, .. }, DecodedCol::Codes(codes)) => {
                        batch_categorical(g, codes, mapper, row_buf, meas_buf, &mut oob);
                    }
                    (
                        FacetSpec::Buckets {
                            mapper, buckets, ..
                        },
                        DecodedCol::Floats(vals),
                    ) => {
                        let FacetGroups::Buckets { stats } = g else {
                            unreachable!("groups[i] was built from specs[i]")
                        };
                        for (k, &row) in row_buf.iter().enumerate() {
                            let Some(t) = mapper[row as usize] else {
                                continue;
                            };
                            let Some(b) = buckets.bucket_of(vals[t as usize]) else {
                                continue;
                            };
                            let s = &mut stats[b];
                            s.rows += 1;
                            let m = meas_buf[k];
                            if !m.is_nan() {
                                s.acc.add(m);
                            }
                        }
                    }
                    (FacetSpec::NumericDomain { mapper, .. }, DecodedCol::Floats(vals)) => {
                        let FacetGroups::Domain { min, max, any } = g else {
                            unreachable!("groups[i] was built from specs[i]")
                        };
                        for &row in row_buf.iter() {
                            let Some(t) = mapper[row as usize] else {
                                continue;
                            };
                            let v = vals[t as usize];
                            if v.is_finite() {
                                *min = min.min(v);
                                *max = max.max(v);
                                *any = true;
                            }
                        }
                    }
                    (FacetSpec::Total, _) => {
                        let FacetGroups::Total { stats } = g else {
                            unreachable!("groups[i] was built from specs[i]")
                        };
                        for &m in meas_buf.iter() {
                            stats.rows += 1;
                            if !m.is_nan() {
                                stats.acc.add(m);
                            }
                        }
                    }
                    // Undecodable column: the accessors would return None
                    // for every row — nothing to accumulate.
                    (_, DecodedCol::Missing) => {}
                    _ => unreachable!("decoded[i] was built from specs[i]"),
                }
            }
        });
        (groups, oob)
    };
    let accumulate = |range: std::ops::Range<usize>| {
        if use_batch {
            return accumulate_batch(range);
        }
        let mut groups: Vec<FacetGroups> = specs
            .iter()
            .map(|s| FacetGroups::new_for_sized(s, wh, dense_limit, dense_size))
            .collect();
        let mut oob = 0u64;
        rows.for_each_in_word_range(range, |row| {
            for (i, spec) in specs.iter().enumerate() {
                let g = &mut groups[i];
                match spec {
                    FacetSpec::Categorical { mapper, .. } => {
                        let Some(target_row) = mapper[row] else {
                            continue;
                        };
                        let Some(code) = cols[i].and_then(|c| c.get_code(target_row as usize))
                        else {
                            continue;
                        };
                        update_categorical(g, code, mv.get(row), &mut oob);
                    }
                    FacetSpec::Buckets {
                        mapper, buckets, ..
                    } => {
                        let FacetGroups::Buckets { stats } = g else {
                            unreachable!("groups[i] was built from specs[i]")
                        };
                        let Some(target_row) = mapper[row] else {
                            continue;
                        };
                        let Some(v) = cols[i].and_then(|c| c.get_float(target_row as usize)) else {
                            continue;
                        };
                        let Some(b) = buckets.bucket_of(v) else {
                            continue;
                        };
                        let s = &mut stats[b];
                        s.rows += 1;
                        if let Some(m) = mv.get(row) {
                            s.acc.add(m);
                        }
                    }
                    FacetSpec::NumericDomain { mapper, .. } => {
                        let FacetGroups::Domain { min, max, any } = g else {
                            unreachable!("groups[i] was built from specs[i]")
                        };
                        let Some(target_row) = mapper[row] else {
                            continue;
                        };
                        let Some(v) = cols[i].and_then(|c| c.get_float(target_row as usize)) else {
                            continue;
                        };
                        if v.is_finite() {
                            *min = min.min(v);
                            *max = max.max(v);
                            *any = true;
                        }
                    }
                    FacetSpec::Total => {
                        let FacetGroups::Total { stats } = g else {
                            unreachable!("groups[i] was built from specs[i]")
                        };
                        stats.rows += 1;
                        if let Some(v) = mv.get(row) {
                            stats.acc.add(v);
                        }
                    }
                }
            }
        });
        (groups, oob)
    };
    let nwords = rows.n_words();
    let ranges = chunk_ranges(nwords, AGG_CHUNK_WORDS);
    let nchunks = ranges.len() as u64;
    // Fixed-size accumulator state of one chunk partial (dense arrays and
    // bucket slots), charged to the budget before the chunk scans.
    let partial_bytes: u64 = specs
        .iter()
        .map(|s| FacetGroups::new_for_sized(s, wh, dense_limit, dense_size).heap_bytes())
        .sum();
    // Each chunk polls governance, then measures its own wall time (a
    // no-op with obs off); the coordinator records them in chunk order.
    let timed = |idx: usize, range: std::ops::Range<usize>| {
        exec.check_at("multi_group_by", idx as u64, nchunks)?;
        exec.charge("multi_group_by", partial_bytes)?;
        let t = exec.obs.timer();
        let (groups, oob) = accumulate(range);
        Ok::<_, QueryError>((groups, oob, t.stop()))
    };
    // Both arms chunk identically and merge in chunk order — the same
    // discipline as the per-facet kernels — so the fused result depends
    // only on the data, never on the thread count.
    let partials: Vec<(Vec<FacetGroups>, u64, u64)> =
        if exec.is_serial() || nwords < 2 * AGG_CHUNK_WORDS {
            ranges
                .iter()
                .enumerate()
                .map(|(i, r)| timed(i, r.clone()))
                .collect::<Result<_, _>>()?
        } else {
            par_map(exec, &ranges, |i, r| timed(i, r.clone()))
                .into_iter()
                .collect::<Result<_, _>>()?
        };
    let mut merged: Vec<FacetGroups> = specs
        .iter()
        .map(|s| FacetGroups::new_for_sized(s, wh, dense_limit, dense_size))
        .collect();
    for (partial, _, _) in &partials {
        for (m, p) in merged.iter_mut().zip(partial) {
            m.merge(p);
        }
    }
    let oob_total: u64 = partials.iter().map(|(_, oob, _)| oob).sum();
    if exec.obs.is_enabled() {
        // One registry lookup for the whole chunk sweep, not one per
        // chunk.
        if let Some(h) = exec.obs.histogram_handle("query.agg_chunk_ns") {
            for (_, _, chunk_ns) in &partials {
                h.record(*chunk_ns);
            }
        }
        // The dense/hash dispatch decision per categorical spec.
        let dense = merged.iter().filter(|g| g.is_dense()).count();
        let hash = merged
            .iter()
            .filter(|g| matches!(g, FacetGroups::Sparse { .. }))
            .count();
        exec.obs.inc("query.agg_dense_dispatch", dense as u64);
        exec.obs.inc("query.agg_hash_dispatch", hash as u64);
        // Which kernel tier ran this scan (batch path above Scalar).
        exec.obs.inc(tier_metric_name(tier), 1);
        if oob_total > 0 {
            exec.obs.inc("query.agg_dense_oob_fallback", oob_total);
        }
    }
    if exec.obs.is_profiling() {
        let dense = merged.iter().filter(|g| g.is_dense()).count();
        let hash = merged
            .iter()
            .filter(|g| matches!(g, FacetGroups::Sparse { .. }))
            .count();
        exec.obs.leaf(
            "multi_group_by",
            kdap_obs::LeafData {
                wall_ns: partials.iter().map(|(_, _, ns)| ns).sum(),
                rows_in: Some(rows.len() as u64),
                rows_out: Some(merged.iter().map(|g| g.n_groups() as u64).sum()),
                cache: None,
                notes: vec![
                    ("specs".into(), specs.len().to_string()),
                    ("chunks".into(), partials.len().to_string()),
                    ("dense".into(), dense.to_string()),
                    ("hash".into(), hash.to_string()),
                    ("kernel".into(), tier.name().to_string()),
                ],
            },
        );
    }
    Ok(merged)
}

/// The per-tier dispatch counter name as a static string, so the hot
/// path never formats one.
fn tier_metric_name(tier: KernelTier) -> &'static str {
    match tier {
        KernelTier::Scalar => "query.kernel_tier.scalar",
        KernelTier::Sse2 => "query.kernel_tier.sse2",
        KernelTier::Neon => "query.kernel_tier.neon",
        KernelTier::Avx2 => "query.kernel_tier.avx2",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{
        aggregate_total, group_by_buckets, group_by_categorical, project_categorical,
        project_numeric,
    };
    use crate::path::paths_between;
    use crate::semijoin::JoinIndex;
    use kdap_warehouse::{ValueType, WarehouseBuilder};

    /// SALES(5 rows, one with a NULL measure operand) → STORE(3 rows).
    fn store_sales() -> Warehouse {
        let mut b = WarehouseBuilder::new();
        b.table(
            "SALES",
            &[
                ("Id", ValueType::Int, false),
                ("SKey", ValueType::Int, false),
                ("Qty", ValueType::Int, false),
                ("Price", ValueType::Float, false),
            ],
        )
        .unwrap();
        b.table(
            "STORE",
            &[
                ("SKey", ValueType::Int, false),
                ("City", ValueType::Str, true),
                ("SqFt", ValueType::Float, false),
            ],
        )
        .unwrap();
        b.rows(
            "STORE",
            vec![
                vec![1i64.into(), "Columbus".into(), 100.0.into()],
                vec![2i64.into(), "Seattle".into(), 200.0.into()],
                vec![3i64.into(), "Columbus".into(), 300.0.into()],
            ],
        )
        .unwrap();
        b.rows(
            "SALES",
            vec![
                vec![0i64.into(), 1i64.into(), 1i64.into(), 10.0.into()],
                vec![1i64.into(), 1i64.into(), 2i64.into(), 10.0.into()],
                vec![2i64.into(), 2i64.into(), 1i64.into(), 50.0.into()],
                vec![3i64.into(), 3i64.into(), 4i64.into(), 5.0.into()],
                // NULL price: reaches the store, contributes no measure.
                vec![
                    4i64.into(),
                    2i64.into(),
                    1i64.into(),
                    kdap_warehouse::Value::Null,
                ],
            ],
        )
        .unwrap();
        b.edge("SALES.SKey", "STORE.SKey", None, Some("Store"))
            .unwrap();
        b.dimension("Store", &["STORE"], vec![], vec![]).unwrap();
        b.fact("SALES").unwrap();
        b.measure_product("Revenue", "SALES.Price", "SALES.Qty")
            .unwrap();
        b.finish().unwrap()
    }

    fn setup() -> (Warehouse, JoinIndex, crate::path::JoinPath, Measure) {
        let wh = store_sales();
        let idx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let store = wh.table_id("STORE").unwrap();
        let path = paths_between(wh.schema(), fact, store, 4).remove(0);
        let measure = wh.schema().measure_by_name("Revenue").unwrap().clone();
        (wh, idx, path, measure)
    }

    #[test]
    fn measure_vector_reproduces_eval_measure() {
        let (wh, _, _, measure) = setup();
        let mv = MeasureVector::build(&wh, &measure);
        assert_eq!(mv.len(), wh.fact_rows());
        assert!(!mv.is_empty());
        for row in 0..wh.fact_rows() {
            assert_eq!(mv.get(row), wh.eval_measure(&measure, row), "row {row}");
        }
    }

    #[test]
    fn fused_scan_matches_per_facet_kernels() {
        let (wh, idx, path, measure) = setup();
        let fact = wh.schema().fact_table();
        let city = wh.col_ref("STORE", "City").unwrap();
        let sqft = wh.col_ref("STORE", "SqFt").unwrap();
        let all = RowSet::full(wh.fact_rows());
        let mv = MeasureVector::build(&wh, &measure);
        let mapper = idx.row_mapper(&wh, fact, &path);
        let values = project_numeric(&wh, &idx, fact, &path, sqft, &all);
        let buckets = Bucketizer::equal_width(values.iter().copied(), 2).unwrap();
        let specs = vec![
            FacetSpec::Categorical {
                attr: city,
                mapper: mapper.clone(),
            },
            FacetSpec::Buckets {
                attr: sqft,
                mapper: mapper.clone(),
                buckets: buckets.clone(),
            },
            FacetSpec::NumericDomain {
                attr: sqft,
                mapper: mapper.clone(),
            },
            FacetSpec::Total,
        ];
        for dense_limit in [DENSE_GROUP_LIMIT, 0] {
            let groups =
                multi_group_by_exec(&wh, &specs, &all, &mv, &ExecConfig::serial(), dense_limit)
                    .unwrap();
            assert_eq!(groups[0].is_dense(), dense_limit > 0);
            assert_eq!(
                groups[0].to_map(AggFunc::Sum),
                group_by_categorical(&wh, &idx, fact, &path, city, &all, &measure, AggFunc::Sum)
            );
            assert_eq!(
                groups[0].domain(),
                project_categorical(&wh, &idx, fact, &path, city, &all)
            );
            assert_eq!(
                groups[1].to_series(AggFunc::Sum),
                group_by_buckets(
                    &wh,
                    &idx,
                    fact,
                    &path,
                    sqft,
                    &all,
                    &measure,
                    AggFunc::Sum,
                    &buckets
                )
            );
            assert_eq!(
                groups[2].bucketizer(2),
                Bucketizer::equal_width(values.iter().copied(), 2)
            );
            assert_eq!(
                groups[3].total(AggFunc::Sum),
                aggregate_total(&wh, &measure, &all, AggFunc::Sum)
            );
        }
    }

    #[test]
    fn null_measure_rows_count_for_presence_not_aggregates() {
        let (wh, idx, path, measure) = setup();
        let fact = wh.schema().fact_table();
        let city = wh.col_ref("STORE", "City").unwrap();
        let mv = MeasureVector::build(&wh, &measure);
        let mapper = idx.row_mapper(&wh, fact, &path);
        // Only the NULL-measure fact (row 4, Seattle).
        let only_null = RowSet::from_rows(wh.fact_rows(), [4]);
        let specs = vec![FacetSpec::Categorical { attr: city, mapper }];
        let groups = multi_group_by(&wh, &specs, &only_null, &mv).unwrap();
        let seattle = wh.column(city).dict().unwrap().code_of("Seattle").unwrap();
        // Seattle is present in the domain…
        assert_eq!(groups[0].domain(), vec![seattle]);
        assert_eq!(groups[0].n_groups(), 1);
        // …but contributes no aggregate, matching the per-facet kernel.
        assert!(groups[0].to_map(AggFunc::Sum).is_empty());
    }

    #[test]
    fn chunked_execution_matches_serial() {
        // Build a row set wide enough to actually chunk (> 2 × 8192 rows).
        let (wh, idx, path, measure) = setup();
        let fact = wh.schema().fact_table();
        let city = wh.col_ref("STORE", "City").unwrap();
        let mv = MeasureVector::build(&wh, &measure);
        let mapper = idx.row_mapper(&wh, fact, &path);
        let specs = vec![
            FacetSpec::Categorical {
                attr: city,
                mapper: mapper.clone(),
            },
            FacetSpec::Total,
        ];
        let all = RowSet::full(wh.fact_rows());
        let serial = multi_group_by(&wh, &specs, &all, &mv).unwrap();
        for threads in [2, 4] {
            let exec = ExecConfig::with_threads(threads);
            let par =
                multi_group_by_exec(&wh, &specs, &all, &mv, &exec, DENSE_GROUP_LIMIT).unwrap();
            assert_eq!(par[0].to_map(AggFunc::Sum), serial[0].to_map(AggFunc::Sum));
            assert_eq!(
                par[1].total(AggFunc::Sum).to_bits(),
                serial[1].total(AggFunc::Sum).to_bits()
            );
        }
    }

    #[test]
    fn out_of_range_code_promotes_to_sparse_instead_of_panicking() {
        // A dense partial sized for 2 codes sees code 7 — the stale-stats
        // scenario. It must fall back to the hash path, keeping every
        // previously accumulated group.
        let mut g = FacetGroups::Dense {
            stats: vec![GroupStats::default(); 2],
        };
        let mut oob = 0;
        update_categorical(&mut g, 1, Some(10.0), &mut oob);
        assert!(g.is_dense());
        update_categorical(&mut g, 7, Some(5.0), &mut oob);
        assert_eq!(oob, 1);
        assert!(!g.is_dense());
        update_categorical(&mut g, 1, None, &mut oob);
        assert_eq!(oob, 1);
        let map = g.to_map(AggFunc::Sum);
        assert_eq!(map.get(&1), Some(&10.0));
        assert_eq!(map.get(&7), Some(&5.0));
        assert_eq!(g.domain(), vec![1, 7]);
        // Presence of the measure-null touch survived the promotion.
        let FacetGroups::Sparse { stats } = &g else {
            panic!("expected sparse")
        };
        assert_eq!(stats[&1].rows, 2);
    }

    #[test]
    fn mixed_shape_partials_merge_to_the_same_totals() {
        // Chunk 1 stayed dense, chunk 2 fell back to sparse: the merge
        // must promote and lose nothing, in either merge order.
        let mut oob = 0;
        let mut dense = FacetGroups::Dense {
            stats: vec![GroupStats::default(); 2],
        };
        update_categorical(&mut dense, 0, Some(3.0), &mut oob);
        let mut sparse = FacetGroups::Sparse {
            stats: HashMap::new(),
        };
        update_categorical(&mut sparse, 0, Some(4.0), &mut oob);
        update_categorical(&mut sparse, 9, Some(1.0), &mut oob);

        let mut a = dense.clone();
        a.merge(&sparse);
        let map = a.to_map(AggFunc::Sum);
        assert_eq!(map.get(&0), Some(&7.0));
        assert_eq!(map.get(&9), Some(&1.0));

        let mut b = sparse.clone();
        b.merge(&dense);
        assert_eq!(b.to_map(AggFunc::Sum), map);
    }

    #[test]
    fn governed_scan_honors_cancellation_and_budget() {
        use crate::govern::QueryContext;
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let (wh, idx, path, measure) = setup();
        let fact = wh.schema().fact_table();
        let city = wh.col_ref("STORE", "City").unwrap();
        let mv = MeasureVector::build(&wh, &measure);
        let mapper = idx.row_mapper(&wh, fact, &path);
        let specs = vec![FacetSpec::Categorical { attr: city, mapper }];
        let all = RowSet::full(wh.fact_rows());

        // Pre-cancelled token: the first chunk check aborts the scan.
        let cancel = Arc::new(AtomicBool::new(true));
        let ctx = Arc::new(QueryContext::new(None, None, cancel));
        let exec = ExecConfig::serial().with_govern(ctx);
        let err =
            multi_group_by_exec(&wh, &specs, &all, &mv, &exec, DENSE_GROUP_LIMIT).unwrap_err();
        assert!(matches!(
            err,
            QueryError::Governed {
                breach: crate::govern::Breach::Cancelled,
                stage: "multi_group_by",
                ..
            }
        ));

        // A one-byte budget: the dense partial allocation breaches it.
        let ctx = Arc::new(QueryContext::new(
            None,
            Some(1),
            Arc::new(AtomicBool::new(false)),
        ));
        let exec = ExecConfig::serial().with_govern(ctx);
        let err =
            multi_group_by_exec(&wh, &specs, &all, &mv, &exec, DENSE_GROUP_LIMIT).unwrap_err();
        assert!(matches!(
            err,
            QueryError::Governed {
                breach: crate::govern::Breach::Budget { .. },
                ..
            }
        ));

        // Ungoverned (and generous) runs still succeed.
        let ctx = Arc::new(QueryContext::new(
            None,
            Some(1 << 20),
            Arc::new(AtomicBool::new(false)),
        ));
        let exec = ExecConfig::serial().with_govern(ctx.clone());
        let groups = multi_group_by_exec(&wh, &specs, &all, &mv, &exec, DENSE_GROUP_LIMIT);
        assert!(groups.is_ok());
        assert!(ctx.charged() > 0, "allocations were charged");
    }
}
