//! The two-level plan IR: logical constraint plans, the selectivity
//! optimizer, and the cached physical executor.
//!
//! A conjunctive query over the fact table (one star net in the core
//! layer) compiles to a [`LogicalPlan`]: one [`PlanNode`] per constraint,
//! each keyed by a canonical [`Fingerprint`] of its `(path, attribute,
//! predicate)` identity. [`optimize`] lowers the logical plan to a
//! [`PhysicalPlan`]:
//!
//! * conjuncts are reordered most-selective-first using per-column
//!   statistics from [`kdap_warehouse::stats`],
//! * fact-local predicates (empty join path on the origin table) fuse
//!   into a single bitmap scan over the fact table,
//! * every physical step carries a cache key, so a [`SemijoinCache`]
//!   shared across a whole candidate set evaluates each distinct
//!   constraint exactly once no matter how many plans contain it.
//!
//! [`execute_plan_traced`] additionally reports per-step estimated vs.
//! actual cardinalities and cache hits — the raw material of `EXPLAIN`.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use kdap_obs::{CacheCounters, CacheOutcome, LeafData};
use kdap_warehouse::{StatsCatalog, TableId, Warehouse};

use crate::bitmap::RowSet;
use crate::error::QueryError;
use crate::exec::{par_map, ExecConfig};
use crate::semijoin::{JoinIndex, Predicate, Selection};

/// Canonical identity of one constraint: join-path edges, attribute, and
/// predicate (sorted codes or numeric-range bits). Two selections with
/// equal fingerprints denote the same fact bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    edges: Vec<u32>,
    attr: (u32, u32),
    codes: Vec<u32>,
    range: Option<(u64, u64)>,
}

impl Fingerprint {
    /// The fingerprint of a selection.
    pub fn of(sel: &Selection) -> Self {
        let edges = sel.path.edges().iter().map(|e| e.0).collect();
        let attr = (sel.attr.table.0, sel.attr.col);
        let (codes, range) = match &sel.predicate {
            Predicate::Codes(codes) => {
                let mut codes = codes.clone();
                codes.sort_unstable();
                (codes, None)
            }
            Predicate::Range { lo, hi } => (Vec::new(), Some((lo.to_bits(), hi.to_bits()))),
        };
        Fingerprint {
            edges,
            attr,
            codes,
            range,
        }
    }
}

/// One logical constraint: the selection plus its canonical identity.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// The constraint's selection on the origin table.
    pub selection: Selection,
    /// Canonical `(path, attr, predicate)` identity.
    pub fingerprint: Fingerprint,
}

impl PlanNode {
    /// Wraps a selection with its fingerprint.
    pub fn new(selection: Selection) -> Self {
        let fingerprint = Fingerprint::of(&selection);
        PlanNode {
            selection,
            fingerprint,
        }
    }
}

/// The logical plan of a conjunctive query: constraints AND together on
/// the origin (fact) table, in no particular order.
#[derive(Debug, Clone, Default)]
pub struct LogicalPlan {
    /// The conjuncts.
    pub nodes: Vec<PlanNode>,
}

impl LogicalPlan {
    /// Builds a logical plan from raw selections.
    pub fn from_selections(selections: Vec<Selection>) -> Self {
        LogicalPlan {
            nodes: selections.into_iter().map(PlanNode::new).collect(),
        }
    }

    /// Order-independent canonical identity of the whole plan (sorted
    /// constraint fingerprints) — equal keys denote equal subspaces.
    pub fn canonical_key(&self) -> Vec<Fingerprint> {
        let mut key: Vec<Fingerprint> = self.nodes.iter().map(|n| n.fingerprint.clone()).collect();
        key.sort();
        key
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan has no conjuncts (the whole dataspace).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Optimizer switches. The default enables everything; [`PlannerConfig::naive`]
/// reproduces the unoptimized per-net evaluation order exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Reorder conjuncts most-selective-first using column statistics.
    pub reorder: bool,
    /// Fuse fact-local predicates into a single bitmap scan.
    pub fuse_fact_local: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            reorder: true,
            fuse_fact_local: true,
        }
    }
}

impl PlannerConfig {
    /// Everything off: conjuncts evaluate one by one in plan order.
    pub fn naive() -> Self {
        PlannerConfig {
            reorder: false,
            fuse_fact_local: false,
        }
    }
}

/// Cache key of one physical step: the sorted fingerprints of the
/// constraints it evaluates (a single one for semi-join steps).
pub type StepKey = Vec<Fingerprint>;

/// One physical step producing a fact bitmap.
#[derive(Debug, Clone)]
pub enum PhysStep {
    /// Semi-join one constraint down its join path.
    Semijoin {
        /// The constraint.
        node: PlanNode,
        /// Estimated fraction of origin rows selected (1.0 = unknown).
        est_fraction: f64,
    },
    /// Evaluate several fact-local predicates in one scan of the origin
    /// table.
    FusedScan {
        /// The fused constraints (all with empty paths on the origin).
        nodes: Vec<PlanNode>,
        /// Estimated combined fraction (product of member fractions).
        est_fraction: f64,
    },
}

impl PhysStep {
    /// The step's cache key.
    pub fn key(&self) -> StepKey {
        match self {
            PhysStep::Semijoin { node, .. } => vec![node.fingerprint.clone()],
            PhysStep::FusedScan { nodes, .. } => {
                let mut key: Vec<Fingerprint> =
                    nodes.iter().map(|n| n.fingerprint.clone()).collect();
                key.sort();
                key
            }
        }
    }

    /// Estimated fraction of origin rows this step keeps.
    pub fn est_fraction(&self) -> f64 {
        match self {
            PhysStep::Semijoin { est_fraction, .. } | PhysStep::FusedScan { est_fraction, .. } => {
                *est_fraction
            }
        }
    }

    /// Number of logical constraints the step covers.
    pub fn n_constraints(&self) -> usize {
        match self {
            PhysStep::Semijoin { .. } => 1,
            PhysStep::FusedScan { nodes, .. } => nodes.len(),
        }
    }

    /// The constraints the step covers.
    pub fn nodes(&self) -> &[PlanNode] {
        match self {
            PhysStep::Semijoin { node, .. } => std::slice::from_ref(node),
            PhysStep::FusedScan { nodes, .. } => nodes,
        }
    }
}

/// The executable plan: steps in chosen evaluation order, each producing
/// a fact bitmap; the bitmaps AND together.
#[derive(Debug, Clone, Default)]
pub struct PhysicalPlan {
    /// Execution steps, most selective first when reordering is on.
    pub steps: Vec<PhysStep>,
}

/// Estimated fraction of *origin* rows a selection keeps. The predicate
/// selectivity is measured on the target table; assuming joins neither
/// concentrate nor dilute values (independence), the same fraction of
/// origin rows survives the semi-join.
fn estimate(wh: &Warehouse, stats: &StatsCatalog, sel: &Selection) -> f64 {
    let s = stats.get(wh, sel.attr);
    match &sel.predicate {
        Predicate::Codes(codes) => s.code_fraction(codes),
        Predicate::Range { lo, hi } => s.range_fraction(*lo, *hi),
    }
}

/// Lowers a logical plan to a physical plan for execution from `origin`.
///
/// With `stats`, each step gets an estimated selectivity; with
/// `cfg.reorder` the steps are additionally sorted most-selective-first
/// (stably, so ties keep plan order). With `cfg.fuse_fact_local`,
/// predicates on the origin table itself (empty join path) are fused into
/// one scan.
pub fn optimize(
    wh: &Warehouse,
    origin: TableId,
    logical: &LogicalPlan,
    cfg: &PlannerConfig,
    stats: Option<&StatsCatalog>,
) -> PhysicalPlan {
    let est = |sel: &Selection| stats.map_or(1.0, |s| estimate(wh, s, sel));
    let mut fact_local: Vec<PlanNode> = Vec::new();
    let mut steps: Vec<PhysStep> = Vec::new();
    for node in &logical.nodes {
        let is_local = node.selection.path.is_empty() && node.selection.attr.table == origin;
        if cfg.fuse_fact_local && is_local {
            fact_local.push(node.clone());
        } else {
            steps.push(PhysStep::Semijoin {
                est_fraction: est(&node.selection),
                node: node.clone(),
            });
        }
    }
    match fact_local.len() {
        0 => {}
        1 => {
            // Infallible: this arm only runs when `fact_local.len() == 1`.
            #[allow(clippy::unwrap_used)]
            let node = fact_local.pop().unwrap();
            steps.push(PhysStep::Semijoin {
                est_fraction: est(&node.selection),
                node,
            });
        }
        _ => {
            let est_fraction = fact_local
                .iter()
                .map(|n| est(&n.selection))
                .product::<f64>();
            steps.push(PhysStep::FusedScan {
                nodes: fact_local,
                est_fraction,
            });
        }
    }
    if cfg.reorder && stats.is_some() {
        steps.sort_by(|a, b| {
            a.est_fraction()
                .partial_cmp(&b.est_fraction())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    PhysicalPlan { steps }
}

/// A shared constraint-bitmap cache: step cache key → fact bitmap.
///
/// One instance per session deduplicates semi-join work across *all*
/// plans executed in that session — the same `(group, path)` constraint
/// appearing in dozens of candidate star nets is propagated once.
#[derive(Debug, Default)]
pub struct SemijoinCache {
    map: Mutex<HashMap<StepKey, Arc<RowSet>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SemijoinCache {
    /// An empty cache.
    pub fn new() -> Self {
        SemijoinCache::default()
    }

    /// Looks up a step bitmap, counting a hit or a miss.
    pub fn lookup(&self, key: &StepKey) -> Option<Arc<RowSet>> {
        match self.map.lock().get(key) {
            Some(rows) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(rows.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a step bitmap (first insert wins on a race).
    pub fn insert(&self, key: StepKey, rows: Arc<RowSet>) {
        self.map.lock().entry(key).or_insert(rows);
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Hit/miss/eviction counters. The cache is unbounded, so evictions
    /// only come from [`SemijoinCache::clear`].
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of cached bitmaps.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Container histogram over every cached row set — how the session's
    /// live constraint bitmaps compress (array/bitmap/run block counts).
    pub fn container_histogram(&self) -> crate::bitmap::ContainerHistogram {
        let mut h = crate::bitmap::ContainerHistogram::default();
        for rows in self.map.lock().values() {
            h.merge(&rows.container_histogram());
        }
        h
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached bitmaps (hit/miss counters are kept; the dropped
    /// entries count as evictions).
    pub fn clear(&self) {
        let mut map = self.map.lock();
        self.evictions
            .fetch_add(map.len() as u64, Ordering::Relaxed);
        map.clear();
    }
}

/// Per-step execution trace for `EXPLAIN`.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTrace {
    /// Estimated fraction of origin rows (1.0 when no statistics).
    pub est_fraction: f64,
    /// Estimated origin rows (`est_fraction × |origin|`, rounded).
    pub est_rows: usize,
    /// Actual origin rows the step's bitmap holds.
    pub actual_rows: usize,
    /// Whether the bitmap came from the semi-join cache.
    pub cache_hit: bool,
    /// Number of logical constraints the step covers (>1 for fused scans).
    pub fused: usize,
}

/// Evaluates several fact-local predicates in one pass over the origin
/// table's rows.
fn fused_scan(wh: &Warehouse, origin: TableId, nodes: &[PlanNode]) -> Result<RowSet, QueryError> {
    enum Matcher<'a> {
        Codes(HashSet<u32>, &'a kdap_warehouse::Column),
        Range(f64, f64, &'a kdap_warehouse::Column),
    }
    let mut matchers = Vec::with_capacity(nodes.len());
    for node in nodes {
        let sel = &node.selection;
        if sel.attr.table != origin {
            return Err(QueryError::AttrOffPathTarget {
                attr_table: sel.attr.table.0,
                target_table: origin.0,
            });
        }
        let col = wh.column(sel.attr);
        matchers.push(match &sel.predicate {
            Predicate::Codes(codes) => Matcher::Codes(codes.iter().copied().collect(), col),
            Predicate::Range { lo, hi } => Matcher::Range(*lo, *hi, col),
        });
    }
    let n = wh.table(origin).nrows();
    let mut rows = RowSet::empty(n);
    'row: for r in 0..n {
        for m in &matchers {
            let keep = match m {
                Matcher::Codes(wanted, col) => col.get_code(r).is_some_and(|c| wanted.contains(&c)),
                Matcher::Range(lo, hi, col) => {
                    col.get_float(r).is_some_and(|v| v >= *lo && v <= *hi)
                }
            };
            if !keep {
                continue 'row;
            }
        }
        rows.insert(r);
    }
    Ok(rows)
}

/// Evaluates one physical step into a fact bitmap.
fn eval_step(
    wh: &Warehouse,
    jidx: &JoinIndex,
    origin: TableId,
    step: &PhysStep,
) -> Result<RowSet, QueryError> {
    match step {
        PhysStep::Semijoin { node, .. } => node.selection.try_eval(wh, jidx, origin),
        PhysStep::FusedScan { nodes, .. } => fused_scan(wh, origin, nodes),
    }
}

/// Evaluates one physical step through an optional cache, returning the
/// fact bitmap and whether it came from the cache. This is the unit of
/// work batch materialization deduplicates across plans.
///
/// A fresh result is inserted into the cache immediately. Coordinators
/// that can abort mid-plan (governed queries) must use
/// [`execute_step_raw`] and commit the staged results themselves, so an
/// aborted query never publishes entries.
pub fn execute_step(
    wh: &Warehouse,
    jidx: &JoinIndex,
    origin: TableId,
    step: &PhysStep,
    cache: Option<&SemijoinCache>,
) -> Result<(Arc<RowSet>, bool), QueryError> {
    let (rows, cache_hit) = execute_step_raw(wh, jidx, origin, step, cache)?;
    if !cache_hit {
        if let Some(cache) = cache {
            cache.insert(step.key(), rows.clone());
        }
    }
    Ok((rows, cache_hit))
}

/// [`execute_step`] without the cache insert: the cache is consulted
/// (counting a hit or miss) but a freshly evaluated bitmap is NOT
/// stored. The coordinator collects `(key, bitmap)` pairs of the misses
/// and commits them only once every step of the plan (or batch) has
/// succeeded — the invariant that keeps an aborted query from poisoning
/// the [`SemijoinCache`] with partial state.
pub fn execute_step_raw(
    wh: &Warehouse,
    jidx: &JoinIndex,
    origin: TableId,
    step: &PhysStep,
    cache: Option<&SemijoinCache>,
) -> Result<(Arc<RowSet>, bool), QueryError> {
    let Some(cache) = cache else {
        return Ok((Arc::new(eval_step(wh, jidx, origin, step)?), false));
    };
    if let Some(rows) = cache.lookup(&step.key()) {
        return Ok((rows, true));
    }
    Ok((Arc::new(eval_step(wh, jidx, origin, step)?), false))
}

/// Executes a physical plan from `origin`, AND-ing the step bitmaps.
///
/// Steps evaluate across `exec`'s worker threads (independently — the
/// intersection is order-insensitive, so every thread count is
/// bit-identical to serial) and through `cache` when one is provided.
pub fn execute_plan(
    wh: &Warehouse,
    jidx: &JoinIndex,
    origin: TableId,
    plan: &PhysicalPlan,
    cache: Option<&SemijoinCache>,
    exec: &ExecConfig,
) -> Result<RowSet, QueryError> {
    execute_plan_traced(wh, jidx, origin, plan, cache, exec).map(|(rows, _)| rows)
}

/// [`execute_plan`] with a per-step [`StepTrace`] (estimated vs. actual
/// cardinality, cache hit), in execution order.
pub fn execute_plan_traced(
    wh: &Warehouse,
    jidx: &JoinIndex,
    origin: TableId,
    plan: &PhysicalPlan,
    cache: Option<&SemijoinCache>,
    exec: &ExecConfig,
) -> Result<(RowSet, Vec<StepTrace>), QueryError> {
    let n = wh.table(origin).nrows();
    let total_steps = plan.steps.len() as u64;
    // Each (worker or serial) evaluation polls governance, then measures
    // its own wall time; the coordinator below records the leaves in step
    // order, so the profile structure is identical at any thread count.
    // Fresh bitmaps go through `execute_step_raw` and are committed to
    // the cache only after EVERY step succeeded — an aborted plan leaves
    // the cache exactly as it found it.
    type TimedStep = (Result<(Arc<RowSet>, bool), QueryError>, u64);
    let timed_step = |i: usize, s: &PhysStep| -> TimedStep {
        let t = exec.obs.timer();
        let result = exec
            .check_at("semijoin", i as u64, total_steps)
            .and_then(|()| execute_step_raw(wh, jidx, origin, s, cache))
            .and_then(|(bitmap, hit)| {
                if !hit {
                    exec.charge("semijoin", bitmap.heap_bytes())?;
                }
                Ok((bitmap, hit))
            });
        (result, t.stop())
    };
    let results: Vec<TimedStep> = if exec.is_serial() || plan.steps.len() < 2 {
        plan.steps
            .iter()
            .enumerate()
            .map(|(i, s)| timed_step(i, s))
            .collect()
    } else {
        par_map(exec, &plan.steps, |i, s| timed_step(i, s))
    };
    let obs_on = exec.obs.is_enabled();
    // Metric handles hoisted out of the step loop: one registry lookup
    // per plan instead of one lock + map probe per step.
    let step_hist = exec.obs.histogram_handle("query.semijoin_step_ns");
    let hit_ctr = exec.obs.counter_handle("query.step_cache_hits");
    let miss_ctr = exec.obs.counter_handle("query.step_cache_misses");
    let profiling = exec.obs.is_profiling();
    let mut rows = RowSet::full(n);
    let mut traces = Vec::with_capacity(plan.steps.len());
    let mut fresh: Vec<(StepKey, Arc<RowSet>)> = Vec::with_capacity(plan.steps.len());
    for (step, (result, step_ns)) in plan.steps.iter().zip(results) {
        let (bitmap, cache_hit) = result?;
        if cache.is_some() && !cache_hit {
            fresh.push((step.key(), bitmap.clone()));
        }
        rows.intersect_with(&bitmap);
        let est_fraction = step.est_fraction();
        if obs_on {
            if let Some(h) = &step_hist {
                h.record(step_ns);
            }
            if let Some(c) = if cache_hit { &hit_ctr } else { &miss_ctr } {
                c.add(1);
            }
        }
        // Leaf construction (its notes allocate) only pays off while a
        // profile is being collected.
        if profiling {
            exec.obs.leaf(
                if step.n_constraints() > 1 {
                    "fused_scan"
                } else {
                    "semijoin"
                },
                LeafData {
                    wall_ns: step_ns,
                    rows_in: Some(n as u64),
                    rows_out: Some(bitmap.len() as u64),
                    cache: cache.map(|_| {
                        if cache_hit {
                            CacheOutcome::Hit
                        } else {
                            CacheOutcome::Miss
                        }
                    }),
                    notes: vec![("constraints".into(), step.n_constraints().to_string())],
                },
            );
        }
        traces.push(StepTrace {
            est_fraction,
            est_rows: (est_fraction * n as f64).round() as usize,
            actual_rows: bitmap.len(),
            cache_hit,
            fused: step.n_constraints(),
        });
    }
    // Every step succeeded: publish the fresh bitmaps.
    if let Some(cache) = cache {
        for (key, bitmap) in fresh {
            cache.insert(key, bitmap);
        }
    }
    Ok((rows, traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::paths_between;
    use kdap_warehouse::{ValueType, WarehouseBuilder};

    /// FACT(6) → DIM(3); FACT carries a local Tag column and a Score.
    fn fixture() -> Warehouse {
        let mut b = WarehouseBuilder::new();
        b.table(
            "FACT",
            &[
                ("Id", ValueType::Int, false),
                ("DKey", ValueType::Int, false),
                ("Tag", ValueType::Str, true),
                ("Score", ValueType::Float, false),
            ],
        )
        .unwrap();
        b.table(
            "DIM",
            &[
                ("DKey", ValueType::Int, false),
                ("Name", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.rows(
            "DIM",
            vec![
                vec![1i64.into(), "Widget".into()],
                vec![2i64.into(), "Gadget".into()],
                vec![3i64.into(), "Gizmo".into()],
            ],
        )
        .unwrap();
        b.rows(
            "FACT",
            vec![
                vec![0i64.into(), 1i64.into(), "hot".into(), 1.0.into()],
                vec![1i64.into(), 1i64.into(), "cold".into(), 2.0.into()],
                vec![2i64.into(), 2i64.into(), "hot".into(), 3.0.into()],
                vec![3i64.into(), 2i64.into(), "hot".into(), 4.0.into()],
                vec![4i64.into(), 3i64.into(), "cold".into(), 5.0.into()],
                vec![5i64.into(), 3i64.into(), "hot".into(), 6.0.into()],
            ],
        )
        .unwrap();
        b.edge("FACT.DKey", "DIM.DKey", None, Some("D")).unwrap();
        b.dimension("D", &["DIM"], vec![], vec![]).unwrap();
        b.fact("FACT").unwrap();
        b.finish().unwrap()
    }

    fn dim_selection(wh: &Warehouse, name: &str) -> Selection {
        let fact = wh.schema().fact_table();
        let dim = wh.table_id("DIM").unwrap();
        let path = paths_between(wh.schema(), fact, dim, 4).remove(0);
        let attr = wh.col_ref("DIM", "Name").unwrap();
        let code = wh.column(attr).dict().unwrap().code_of(name).unwrap();
        Selection::by_codes(path, attr, vec![code])
    }

    fn tag_selection(wh: &Warehouse, tag: &str) -> Selection {
        let attr = wh.col_ref("FACT", "Tag").unwrap();
        let code = wh.column(attr).dict().unwrap().code_of(tag).unwrap();
        Selection::by_codes(crate::path::JoinPath::empty(), attr, vec![code])
    }

    #[test]
    fn fingerprints_identify_equal_constraints() {
        let wh = fixture();
        let a = Fingerprint::of(&dim_selection(&wh, "Widget"));
        let b = Fingerprint::of(&dim_selection(&wh, "Widget"));
        let c = Fingerprint::of(&dim_selection(&wh, "Gadget"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Code order is canonicalized.
        let attr = wh.col_ref("DIM", "Name").unwrap();
        let p = paths_between(
            wh.schema(),
            wh.schema().fact_table(),
            wh.table_id("DIM").unwrap(),
            4,
        )
        .remove(0);
        let x = Fingerprint::of(&Selection::by_codes(p.clone(), attr, vec![0, 1]));
        let y = Fingerprint::of(&Selection::by_codes(p, attr, vec![1, 0]));
        assert_eq!(x, y);
    }

    #[test]
    fn executed_plan_matches_direct_evaluation() {
        let wh = fixture();
        let jidx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let sels = vec![dim_selection(&wh, "Widget"), tag_selection(&wh, "hot")];
        let mut expect = RowSet::full(wh.fact_rows());
        for s in &sels {
            expect.intersect_with(&s.try_eval(&wh, &jidx, fact).unwrap());
        }
        let logical = LogicalPlan::from_selections(sels);
        let stats = StatsCatalog::new();
        for cfg in [PlannerConfig::default(), PlannerConfig::naive()] {
            let plan = optimize(&wh, fact, &logical, &cfg, Some(&stats));
            let rows = execute_plan(&wh, &jidx, fact, &plan, None, &ExecConfig::serial()).unwrap();
            assert_eq!(
                rows.iter().collect::<Vec<_>>(),
                expect.iter().collect::<Vec<_>>(),
                "{cfg:?}"
            );
        }
    }

    #[test]
    fn reorder_puts_most_selective_first() {
        let wh = fixture();
        let fact = wh.schema().fact_table();
        // Widget selects 2/6 facts, hot tag selects 4/6.
        let logical = LogicalPlan::from_selections(vec![
            tag_selection(&wh, "hot"),
            dim_selection(&wh, "Widget"),
        ]);
        let stats = StatsCatalog::new();
        let cfg = PlannerConfig {
            reorder: true,
            fuse_fact_local: false,
        };
        let plan = optimize(&wh, fact, &logical, &cfg, Some(&stats));
        let fractions: Vec<f64> = plan.steps.iter().map(|s| s.est_fraction()).collect();
        assert!(fractions.windows(2).all(|w| w[0] <= w[1]), "{fractions:?}");
        let PhysStep::Semijoin { node, .. } = &plan.steps[0] else {
            panic!("semijoin step expected");
        };
        assert_eq!(node.selection.attr, wh.col_ref("DIM", "Name").unwrap());
    }

    #[test]
    fn fact_local_predicates_fuse_into_one_step() {
        let wh = fixture();
        let jidx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let attr = wh.col_ref("FACT", "Score").unwrap();
        let range = Selection::by_range(crate::path::JoinPath::empty(), attr, 2.0, 5.0);
        let logical = LogicalPlan::from_selections(vec![
            tag_selection(&wh, "hot"),
            range,
            dim_selection(&wh, "Gadget"),
        ]);
        let plan = optimize(&wh, fact, &logical, &PlannerConfig::default(), None);
        assert_eq!(plan.steps.len(), 2, "two fact-local predicates fused");
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s, PhysStep::FusedScan { nodes, .. } if nodes.len() == 2)));
        let rows = execute_plan(&wh, &jidx, fact, &plan, None, &ExecConfig::serial()).unwrap();
        // hot ∧ score∈[2,5] ∧ Gadget → facts 2, 3.
        assert_eq!(rows.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn cache_deduplicates_shared_steps() {
        let wh = fixture();
        let jidx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let cache = SemijoinCache::new();
        let logical = LogicalPlan::from_selections(vec![dim_selection(&wh, "Widget")]);
        let plan = optimize(&wh, fact, &logical, &PlannerConfig::default(), None);
        let a = execute_plan(&wh, &jidx, fact, &plan, Some(&cache), &ExecConfig::serial()).unwrap();
        let (_, traces) =
            execute_plan_traced(&wh, &jidx, fact, &plan, Some(&cache), &ExecConfig::serial())
                .unwrap();
        assert!(traces[0].cache_hit);
        assert_eq!(traces[0].actual_rows, a.len());
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.counters(), CacheCounters::new(1, 1, 1));
    }

    #[test]
    fn traced_execution_feeds_profile_leaves() {
        let wh = fixture();
        let jidx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let logical = LogicalPlan::from_selections(vec![
            dim_selection(&wh, "Widget"),
            tag_selection(&wh, "hot"),
        ]);
        let cfg = PlannerConfig {
            reorder: false,
            fuse_fact_local: false,
        };
        let plan = optimize(&wh, fact, &logical, &cfg, None);
        let obs = kdap_obs::Obs::enabled();
        obs.start_profile("q");
        let exec = ExecConfig::serial().with_obs(obs.clone());
        let _ = execute_plan_traced(&wh, &jidx, fact, &plan, None, &exec).unwrap();
        let p = obs.take_profile().unwrap();
        assert_eq!(p.stage_names(), vec!["semijoin", "semijoin"]);
        assert_eq!(p.roots[0].rows_out, Some(2));
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.histograms["query.semijoin_step_ns"].count, 2);
    }

    #[test]
    fn parallel_execution_is_bit_identical() {
        let wh = fixture();
        let jidx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let logical = LogicalPlan::from_selections(vec![
            dim_selection(&wh, "Widget"),
            tag_selection(&wh, "hot"),
            tag_selection(&wh, "cold"),
        ]);
        let stats = StatsCatalog::new();
        let plan = optimize(&wh, fact, &logical, &PlannerConfig::default(), Some(&stats));
        let serial = execute_plan(&wh, &jidx, fact, &plan, None, &ExecConfig::serial()).unwrap();
        for threads in [2usize, 4] {
            let par = execute_plan(
                &wh,
                &jidx,
                fact,
                &plan,
                None,
                &ExecConfig::with_threads(threads),
            )
            .unwrap();
            assert_eq!(
                serial.iter().collect::<Vec<_>>(),
                par.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn traces_report_estimates_and_actuals() {
        let wh = fixture();
        let jidx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        let logical = LogicalPlan::from_selections(vec![dim_selection(&wh, "Widget")]);
        let stats = StatsCatalog::new();
        let plan = optimize(&wh, fact, &logical, &PlannerConfig::default(), Some(&stats));
        let (_, traces) =
            execute_plan_traced(&wh, &jidx, fact, &plan, None, &ExecConfig::serial()).unwrap();
        assert_eq!(traces.len(), 1);
        // Widget: 1/3 of DIM rows → estimated 2/6 facts; actually 2.
        assert_eq!(traces[0].est_rows, 2);
        assert_eq!(traces[0].actual_rows, 2);
        assert!(!traces[0].cache_hit);
        assert_eq!(traces[0].fused, 1);
    }

    #[test]
    fn invalid_selection_surfaces_typed_error() {
        let wh = fixture();
        let jidx = JoinIndex::build(&wh);
        let fact = wh.schema().fact_table();
        // DIM attribute with an empty path: off the origin table.
        let attr = wh.col_ref("DIM", "Name").unwrap();
        let bad = Selection::by_codes(crate::path::JoinPath::empty(), attr, vec![0]);
        let logical = LogicalPlan::from_selections(vec![bad]);
        let plan = optimize(&wh, fact, &logical, &PlannerConfig::naive(), None);
        let err = execute_plan(&wh, &jidx, fact, &plan, None, &ExecConfig::serial());
        assert!(matches!(err, Err(QueryError::AttrOffPathTarget { .. })));
    }
}
