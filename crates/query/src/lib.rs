//! # kdap-query
//!
//! Star-join execution over the KDAP warehouse: semi-join propagation of
//! hit-group selections down to fact-row bitmaps, fact→dimension row
//! mapping, and group-by aggregation over categorical and bucketized
//! numerical domains. These are the primitives behind subspace
//! materialization and facet construction in the KDAP core.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod aggregate;
pub mod aggregate_multi;
pub mod bitmap;
pub mod error;
pub mod exec;
pub mod govern;
pub mod kernel;
pub mod path;
pub mod plan;
pub mod semijoin;

pub use aggregate::Accumulator;
pub use aggregate::{
    aggregate_total, aggregate_total_exec, group_by_buckets, group_by_buckets_exec,
    group_by_categorical, group_by_categorical_exec, project_categorical, project_numeric, AggFunc,
    Bucketizer,
};
pub use aggregate_multi::{
    multi_group_by, multi_group_by_exec, FacetGroups, FacetSpec, GroupStats, MeasureVector,
    DENSE_GROUP_LIMIT,
};
pub use bitmap::{ContainerHistogram, RowSet};
pub use error::QueryError;
pub use exec::{chunk_ranges, par_map, ExecConfig};
pub use govern::{Breach, QueryContext};
pub use kernel::KernelTier;
pub use path::{fact_paths_by_table, paths_between, JoinPath, MAX_PATH_LEN};
pub use plan::{
    execute_plan, execute_plan_traced, execute_step, execute_step_raw, optimize, Fingerprint,
    LogicalPlan, PhysStep, PhysicalPlan, PlanNode, PlannerConfig, SemijoinCache, StepKey,
    StepTrace,
};
pub use semijoin::{JoinIndex, Predicate, RowMapper, Selection};
