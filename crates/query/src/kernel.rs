//! Runtime-dispatched vectorized set-algebra and gather kernels.
//!
//! Sibling of [`kdap_warehouse::kernel`] (which owns tier detection and
//! code unpacking — both re-exported here): this module holds the
//! query-side batch kernels that the hybrid [`crate::RowSet`] containers
//! and the fused group-by build on:
//!
//! * bitwise AND / OR / ANDNOT over `u64` word slices (8 KiB block
//!   bitmaps),
//! * population count and run-start count (the two passes of
//!   `Container::from_words` canonicalization),
//! * `f64` gather by `u32` index (measure gathers in the batch group-by).
//!
//! All kernels move integers or copy floats — nothing reassociates
//! floating-point arithmetic — so every tier is bit-identical to the
//! public `_scalar` reference twins, which `tests/simd_equivalence.rs`
//! checks property-style.

pub use kdap_warehouse::kernel::{
    active_tier, apply_null_sentinel, detected_features, detected_tier, simd_disabled_by_env,
    unpack_words, unpack_words_scalar, KernelTier, NULL_CODE,
};

/// Scalar reference: `dst[i] &= src[i]`.
pub fn and_words_scalar(dst: &mut [u64], src: &[u64]) {
    for (x, y) in dst.iter_mut().zip(src) {
        *x &= y;
    }
}

/// Scalar reference: `dst[i] |= src[i]`.
pub fn or_words_scalar(dst: &mut [u64], src: &[u64]) {
    for (x, y) in dst.iter_mut().zip(src) {
        *x |= y;
    }
}

/// Scalar reference: `dst[i] &= !src[i]`.
pub fn andnot_words_scalar(dst: &mut [u64], src: &[u64]) {
    for (x, y) in dst.iter_mut().zip(src) {
        *x &= !y;
    }
}

/// Scalar reference: total set bits in `words`.
pub fn popcount_words_scalar(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Scalar reference: number of 0→1 transitions across `words` (the run
/// count of the bitmap, carrying the top bit across word boundaries).
pub fn count_run_starts_scalar(words: &[u64]) -> usize {
    let mut n = 0usize;
    let mut carry = 0u64;
    for &w in words {
        n += (w & !((w << 1) | carry)).count_ones() as usize;
        carry = w >> 63;
    }
    n
}

/// Scalar reference: `out[k] = values[idx[k]]`; all indices must be in
/// bounds.
pub fn gather_f64_scalar(values: &[f64], idx: &[u32], out: &mut [f64]) {
    for (slot, &i) in out.iter_mut().zip(idx) {
        *slot = values[i as usize];
    }
}

/// Four-wide unrolled twins for the Sse2/Neon tiers: fixed-trip inner
/// loops that LLVM auto-vectorizes at the target's native width.
mod unrolled {
    pub fn and_words(dst: &mut [u64], src: &[u64]) {
        let n4 = dst.len().min(src.len()) / 4 * 4;
        for (x, y) in dst[..n4].chunks_exact_mut(4).zip(src[..n4].chunks_exact(4)) {
            x[0] &= y[0];
            x[1] &= y[1];
            x[2] &= y[2];
            x[3] &= y[3];
        }
        super::and_words_scalar(&mut dst[n4..], &src[n4..]);
    }

    pub fn or_words(dst: &mut [u64], src: &[u64]) {
        let n4 = dst.len().min(src.len()) / 4 * 4;
        for (x, y) in dst[..n4].chunks_exact_mut(4).zip(src[..n4].chunks_exact(4)) {
            x[0] |= y[0];
            x[1] |= y[1];
            x[2] |= y[2];
            x[3] |= y[3];
        }
        super::or_words_scalar(&mut dst[n4..], &src[n4..]);
    }

    pub fn andnot_words(dst: &mut [u64], src: &[u64]) {
        let n4 = dst.len().min(src.len()) / 4 * 4;
        for (x, y) in dst[..n4].chunks_exact_mut(4).zip(src[..n4].chunks_exact(4)) {
            x[0] &= !y[0];
            x[1] &= !y[1];
            x[2] &= !y[2];
            x[3] &= !y[3];
        }
        super::andnot_words_scalar(&mut dst[n4..], &src[n4..]);
    }

    pub fn popcount_words(words: &[u64]) -> usize {
        let mut acc = [0usize; 4];
        let n4 = words.len() / 4 * 4;
        for c in words[..n4].chunks_exact(4) {
            acc[0] += c[0].count_ones() as usize;
            acc[1] += c[1].count_ones() as usize;
            acc[2] += c[2].count_ones() as usize;
            acc[3] += c[3].count_ones() as usize;
        }
        acc[0] + acc[1] + acc[2] + acc[3] + super::popcount_words_scalar(&words[n4..])
    }
}

/// Dispatched `dst[i] &= src[i]` over `min(dst.len(), src.len())` words.
pub fn and_words(dst: &mut [u64], src: &[u64]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier Avx2 is only returned after runtime detection.
        KernelTier::Avx2 => unsafe { avx2::and_words(dst, src) },
        KernelTier::Scalar => and_words_scalar(dst, src),
        _ => unrolled::and_words(dst, src),
    }
}

/// Dispatched `dst[i] |= src[i]` over `min(dst.len(), src.len())` words.
pub fn or_words(dst: &mut [u64], src: &[u64]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier Avx2 is only returned after runtime detection.
        KernelTier::Avx2 => unsafe { avx2::or_words(dst, src) },
        KernelTier::Scalar => or_words_scalar(dst, src),
        _ => unrolled::or_words(dst, src),
    }
}

/// Dispatched `dst[i] &= !src[i]` over `min(dst.len(), src.len())` words.
pub fn andnot_words(dst: &mut [u64], src: &[u64]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier Avx2 is only returned after runtime detection.
        KernelTier::Avx2 => unsafe { avx2::andnot_words(dst, src) },
        KernelTier::Scalar => andnot_words_scalar(dst, src),
        _ => unrolled::andnot_words(dst, src),
    }
}

/// Dispatched population count over `words`.
pub fn popcount_words(words: &[u64]) -> usize {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier Avx2 is only returned after runtime detection.
        KernelTier::Avx2 => unsafe { avx2::popcount_words(words) },
        KernelTier::Scalar => popcount_words_scalar(words),
        _ => unrolled::popcount_words(words),
    }
}

/// Dispatched run-start (0→1 transition) count over `words`.
pub fn count_run_starts(words: &[u64]) -> usize {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier Avx2 is only returned after runtime detection.
        KernelTier::Avx2 => unsafe { avx2::count_run_starts(words) },
        // The word-serial carry chain is already tight; the unrolled tiers
        // share the scalar loop.
        _ => count_run_starts_scalar(words),
    }
}

/// Dispatched gather: `out[k] = values[idx[k]]` for `k` in
/// `0..min(idx.len(), out.len())`. Panics (scalar) or debug-asserts
/// (AVX2) on out-of-bounds indices — callers pass row indices they
/// collected from a `RowSet` over the same universe.
pub fn gather_f64(values: &[f64], idx: &[u32], out: &mut [f64]) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier Avx2 is detection-proven; indices are validated
        // against `values.len()` inside.
        KernelTier::Avx2 => unsafe { avx2::gather_f64(values, idx, out) },
        _ => gather_f64_scalar(values, idx, out),
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Explicit AVX2 kernels; callers must have proved AVX2 support via
    //! runtime detection.
    use std::arch::x86_64::*;

    macro_rules! binop {
        ($name:ident, $combine:expr, $tail:path) => {
            /// # Safety
            /// Caller must guarantee AVX2 (runtime-detected).
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(dst: &mut [u64], src: &[u64]) {
                let n = dst.len().min(src.len());
                let n4 = n / 4 * 4;
                let d = dst.as_mut_ptr();
                let s = src.as_ptr();
                let mut i = 0;
                while i < n4 {
                    let x = _mm256_loadu_si256(d.add(i) as *const __m256i);
                    let y = _mm256_loadu_si256(s.add(i) as *const __m256i);
                    #[allow(clippy::redundant_closure_call)]
                    _mm256_storeu_si256(d.add(i) as *mut __m256i, ($combine)(x, y));
                    i += 4;
                }
                $tail(&mut dst[n4..n], &src[n4..n]);
            }
        };
    }

    binop!(
        and_words,
        |x, y| _mm256_and_si256(x, y),
        super::and_words_scalar
    );
    binop!(
        or_words,
        |x, y| _mm256_or_si256(x, y),
        super::or_words_scalar
    );
    binop!(
        andnot_words,
        // vpandn computes !a & b, so swap the operands.
        |x, y| _mm256_andnot_si256(y, x),
        super::andnot_words_scalar
    );

    /// Per-byte popcount of one 256-bit lane via the nibble-LUT trick,
    /// horizontally summed into four u64 lanes by `vpsadbw`.
    ///
    /// # Safety
    /// Caller must guarantee AVX2 (runtime-detected).
    #[target_feature(enable = "avx2")]
    unsafe fn popcount256(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> u64 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        let s = _mm_add_epi64(lo, hi);
        (_mm_cvtsi128_si64(s) as u64).wrapping_add(_mm_extract_epi64::<1>(s) as u64)
    }

    /// # Safety
    /// Caller must guarantee AVX2 (runtime-detected).
    #[target_feature(enable = "avx2")]
    pub unsafe fn popcount_words(words: &[u64]) -> usize {
        let n4 = words.len() / 4 * 4;
        let p = words.as_ptr();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < n4 {
            let v = _mm256_loadu_si256(p.add(i) as *const __m256i);
            acc = _mm256_add_epi64(acc, popcount256(v));
            i += 4;
        }
        hsum_epi64(acc) as usize + super::popcount_words_scalar(&words[n4..])
    }

    /// Counts 0→1 transitions: for each word `w` with predecessor `p`,
    /// the starts are `w & !((w << 1) | (p >> 63))` — the predecessor load
    /// is just an offset-by-one unaligned load, so the whole pass
    /// vectorizes despite the carry chain.
    ///
    /// # Safety
    /// Caller must guarantee AVX2 (runtime-detected).
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_run_starts(words: &[u64]) -> usize {
        if words.is_empty() {
            return 0;
        }
        let w0 = words[0];
        let mut n = (w0 & !(w0 << 1)).count_ones() as usize;
        let m = words.len() - 1; // words[1..] vectorized against words[0..]
        let n4 = m / 4 * 4;
        let p = words.as_ptr();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < n4 {
            let w = _mm256_loadu_si256(p.add(1 + i) as *const __m256i);
            let prev = _mm256_loadu_si256(p.add(i) as *const __m256i);
            let shifted = _mm256_or_si256(_mm256_slli_epi64::<1>(w), _mm256_srli_epi64::<63>(prev));
            let starts = _mm256_andnot_si256(shifted, w);
            acc = _mm256_add_epi64(acc, popcount256(starts));
            i += 4;
        }
        n += hsum_epi64(acc) as usize;
        for k in (1 + n4)..words.len() {
            let w = words[k];
            n += (w & !((w << 1) | (words[k - 1] >> 63))).count_ones() as usize;
        }
        n
    }

    /// # Safety
    /// Caller must guarantee AVX2 (runtime-detected) and every index in
    /// `idx[..out.len()]` in bounds for `values` (debug-asserted).
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_f64(values: &[f64], idx: &[u32], out: &mut [f64]) {
        let n = idx.len().min(out.len());
        debug_assert!(idx[..n].iter().all(|&i| (i as usize) < values.len()));
        let n4 = n / 4 * 4;
        let base = values.as_ptr();
        let mut k = 0;
        while k < n4 {
            let ix = _mm_loadu_si128(idx.as_ptr().add(k) as *const __m128i);
            let v = _mm256_i32gather_pd::<8>(base, ix);
            _mm256_storeu_pd(out.as_mut_ptr().add(k), v);
            k += 4;
        }
        super::gather_f64_scalar(values, &idx[n4..n], &mut out[n4..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words_pattern(len: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                // xorshift64
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn word_ops_match_scalar_on_all_tiers() {
        for len in [0usize, 1, 3, 4, 7, 128, 1024, 1029] {
            let a = words_pattern(len, 0xDEAD);
            let b = words_pattern(len, 0xBEEF);
            type Pair = (fn(&mut [u64], &[u64]), fn(&mut [u64], &[u64]));
            let cases: [Pair; 3] = [
                (and_words, and_words_scalar),
                (or_words, or_words_scalar),
                (andnot_words, andnot_words_scalar),
            ];
            for (dispatched, scalar) in cases {
                let mut x = a.clone();
                let mut y = a.clone();
                dispatched(&mut x, &b);
                scalar(&mut y, &b);
                assert_eq!(x, y, "len={len}");
            }
        }
    }

    #[test]
    fn popcount_and_run_starts_match_scalar() {
        for len in [0usize, 1, 4, 5, 1024, 1023] {
            for seed in [1u64, 0xFFFF_FFFF_FFFF_FFFF, 0x8000_0000_0000_0001] {
                let mut w = words_pattern(len, seed);
                if len > 2 {
                    w[1] = u64::MAX; // exercise cross-word runs
                    w[2] = 1;
                }
                assert_eq!(popcount_words(&w), popcount_words_scalar(&w), "len={len}");
                assert_eq!(
                    count_run_starts(&w),
                    count_run_starts_scalar(&w),
                    "len={len} seed={seed}"
                );
            }
        }
        // Known values: 0b0110 has one run; a run spanning words has one.
        assert_eq!(count_run_starts(&[0b0110]), 1);
        assert_eq!(count_run_starts(&[1 << 63, 1]), 1);
        assert_eq!(count_run_starts(&[1 << 63, 2]), 2);
    }

    #[test]
    fn gather_matches_scalar_and_preserves_bits() {
        let values: Vec<f64> = (0..1000)
            .map(|i| {
                if i % 9 == 0 {
                    f64::NAN
                } else {
                    i as f64 * 1.25 - 3.0
                }
            })
            .collect();
        let idx: Vec<u32> = (0..997u32).map(|k| (k * 7919) % 1000).collect();
        let mut got = vec![0f64; idx.len()];
        let mut want = vec![0f64; idx.len()];
        gather_f64(&values, &idx, &mut got);
        gather_f64_scalar(&values, &idx, &mut want);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}
