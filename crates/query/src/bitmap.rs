//! Fixed-width row bitmaps for fact-row sets (subspaces).

use crate::error::QueryError;
use crate::exec::{chunk_ranges, par_map, ExecConfig};

/// Words per parallel chunk for the set-algebra kernels (1 MiB of rows).
/// Chunking depends only on set size, so chunked results are identical
/// for every thread count.
const PAR_CHUNK_WORDS: usize = 16 * 1024;

/// A set of row indices over a table of known size, stored as a bitmap.
///
/// A KDAP *subspace* DS′ is exactly a `RowSet` over the fact table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSet {
    words: Vec<u64>,
    nrows: usize,
}

impl RowSet {
    /// Empty set over `nrows` rows.
    pub fn empty(nrows: usize) -> Self {
        RowSet {
            words: vec![0; nrows.div_ceil(64)],
            nrows,
        }
    }

    /// Full set over `nrows` rows.
    pub fn full(nrows: usize) -> Self {
        let mut s = RowSet::empty(nrows);
        for (i, w) in s.words.iter_mut().enumerate() {
            let base = i * 64;
            let bits = nrows.saturating_sub(base).min(64);
            *w = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
        }
        s
    }

    /// Builds a set from explicit row indices.
    pub fn from_rows(nrows: usize, rows: impl IntoIterator<Item = usize>) -> Self {
        let mut s = RowSet::empty(nrows);
        for r in rows {
            s.insert(r);
        }
        s
    }

    /// Builds a set directly from its word representation. `words` must
    /// hold exactly `nrows.div_ceil(64)` words with no bits past `nrows`.
    pub fn from_words(nrows: usize, words: Vec<u64>) -> Result<Self, QueryError> {
        if words.len() != nrows.div_ceil(64) {
            return Err(QueryError::RowOutOfRange {
                row: words.len() * 64,
                universe: nrows,
            });
        }
        if let Some(&last) = words.last() {
            let bits = nrows - (words.len() - 1) * 64;
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            if last & !mask != 0 {
                return Err(QueryError::RowOutOfRange {
                    row: nrows,
                    universe: nrows,
                });
            }
        }
        Ok(RowSet { words, nrows })
    }

    /// The backing `u64` words, least-significant bit = lowest row.
    /// Chunked kernels (aggregation, set algebra) operate directly on
    /// word slices of this representation.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Number of rows in the underlying table.
    pub fn universe(&self) -> usize {
        self.nrows
    }

    /// Heap footprint of the backing word vector in bytes. Memory-budget
    /// accounting charges this for every freshly materialized set.
    pub fn heap_bytes(&self) -> u64 {
        (self.words.len() * std::mem::size_of::<u64>()) as u64
    }

    /// Inserts one row. Panics when out of range (programming error).
    pub fn insert(&mut self, row: usize) {
        assert!(row < self.nrows, "row {row} out of range {}", self.nrows);
        self.words[row / 64] |= 1u64 << (row % 64);
    }

    /// Membership test.
    pub fn contains(&self, row: usize) -> bool {
        row < self.nrows && self.words[row / 64] & (1u64 << (row % 64)) != 0
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no row is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn check_universe(&self, other: &RowSet) -> Result<(), QueryError> {
        if self.nrows == other.nrows {
            Ok(())
        } else {
            Err(QueryError::UniverseMismatch {
                left: self.nrows,
                right: other.nrows,
            })
        }
    }

    /// In-place intersection. Panics on mismatched universes.
    pub fn intersect_with(&mut self, other: &RowSet) {
        assert_eq!(self.nrows, other.nrows, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Fallible in-place intersection.
    pub fn try_intersect_with(&mut self, other: &RowSet) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.intersect_with(other);
        Ok(())
    }

    /// In-place union. Panics on mismatched universes.
    pub fn union_with(&mut self, other: &RowSet) {
        assert_eq!(self.nrows, other.nrows, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Fallible in-place union.
    pub fn try_union_with(&mut self, other: &RowSet) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.union_with(other);
        Ok(())
    }

    /// In-place difference (`self \ other`). Panics on mismatched
    /// universes.
    pub fn and_not_with(&mut self, other: &RowSet) {
        assert_eq!(self.nrows, other.nrows, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Fallible in-place difference.
    pub fn try_and_not_with(&mut self, other: &RowSet) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.and_not_with(other);
        Ok(())
    }

    /// Applies a word-level binary operation chunk-by-chunk, fanning the
    /// chunks out over `exec`'s workers. Results are written back in chunk
    /// order, so the outcome is identical for every thread count (the ops
    /// are pure bitwise combines).
    fn zip_words_exec(
        &mut self,
        other: &RowSet,
        exec: &ExecConfig,
        op: impl Fn(u64, u64) -> u64 + Sync,
    ) {
        if exec.is_serial() || self.words.len() < 2 * PAR_CHUNK_WORDS {
            for (a, b) in self.words.iter_mut().zip(&other.words) {
                *a = op(*a, *b);
            }
            return;
        }
        let ranges = chunk_ranges(self.words.len(), PAR_CHUNK_WORDS);
        let words = &self.words;
        let chunks: Vec<Vec<u64>> = par_map(exec, &ranges, |_, r| {
            words[r.clone()]
                .iter()
                .zip(&other.words[r.clone()])
                .map(|(&a, &b)| op(a, b))
                .collect()
        });
        for (r, chunk) in ranges.into_iter().zip(chunks) {
            self.words[r].copy_from_slice(&chunk);
        }
    }

    /// Chunked intersection over `exec`'s workers.
    pub fn intersect_with_exec(
        &mut self,
        other: &RowSet,
        exec: &ExecConfig,
    ) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.zip_words_exec(other, exec, |a, b| a & b);
        Ok(())
    }

    /// Chunked union over `exec`'s workers.
    pub fn union_with_exec(&mut self, other: &RowSet, exec: &ExecConfig) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.zip_words_exec(other, exec, |a, b| a | b);
        Ok(())
    }

    /// Chunked difference over `exec`'s workers.
    pub fn and_not_with_exec(
        &mut self,
        other: &RowSet,
        exec: &ExecConfig,
    ) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.zip_words_exec(other, exec, |a, b| a & !b);
        Ok(())
    }

    /// Iterates set rows in ascending order, skipping empty words.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter_word_range(0..self.words.len())
    }

    /// Word-skipping iterator over the rows encoded in the given word
    /// range. Zero words are filtered out before any bit probing happens,
    /// so sparse sets iterate in time proportional to their occupied words
    /// rather than their universe. Chunked kernels hand each worker a
    /// sub-range of words.
    pub fn iter_word_range(
        &self,
        words: std::ops::Range<usize>,
    ) -> impl Iterator<Item = usize> + '_ {
        let start = words.start;
        self.words[words]
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != 0)
            .flat_map(move |(i, &w)| {
                let mut w = w;
                std::iter::from_fn(move || {
                    if w == 0 {
                        None
                    } else {
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        Some((start + i) * 64 + bit)
                    }
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = RowSet::empty(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = RowSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.contains(69));
        assert!(!f.contains(70));
    }

    #[test]
    fn full_has_no_stray_bits_past_end() {
        for n in [1usize, 63, 64, 65, 128, 130] {
            let f = RowSet::full(n);
            assert_eq!(f.len(), n, "n={n}");
        }
        assert_eq!(RowSet::full(0).len(), 0);
    }

    #[test]
    fn insert_contains_iter() {
        let mut s = RowSet::empty(100);
        s.insert(0);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(64));
        assert!(!s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 99]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn set_algebra() {
        let a = RowSet::from_rows(10, [1, 2, 3]);
        let b = RowSet::from_rows(10, [2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        RowSet::empty(5).insert(5);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universe_panics() {
        let mut a = RowSet::empty(5);
        a.intersect_with(&RowSet::empty(6));
    }

    #[test]
    fn try_variants_surface_typed_errors() {
        let mut a = RowSet::empty(5);
        let err = a.try_intersect_with(&RowSet::empty(6)).unwrap_err();
        assert_eq!(err, QueryError::UniverseMismatch { left: 5, right: 6 });
        assert!(a.try_union_with(&RowSet::empty(6)).is_err());
        assert!(a.try_and_not_with(&RowSet::empty(6)).is_err());
        assert!(a.try_intersect_with(&RowSet::full(5)).is_ok());
    }

    #[test]
    fn and_not_removes_rows() {
        let mut a = RowSet::from_rows(10, [1, 2, 3]);
        a.and_not_with(&RowSet::from_rows(10, [2, 4]));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn words_round_trip() {
        let a = RowSet::from_rows(130, [0, 64, 129]);
        let b = RowSet::from_words(130, a.as_words().to_vec()).unwrap();
        assert_eq!(a, b);
        // Wrong word count and stray bits past the universe are rejected.
        assert!(RowSet::from_words(130, vec![0; 2]).is_err());
        assert!(RowSet::from_words(130, vec![0, 0, u64::MAX]).is_err());
    }

    #[test]
    fn word_range_iteration() {
        let s = RowSet::from_rows(256, [0, 63, 64, 200]);
        assert_eq!(s.iter_word_range(0..1).collect::<Vec<_>>(), vec![0, 63]);
        assert_eq!(s.iter_word_range(1..4).collect::<Vec<_>>(), vec![64, 200]);
        assert_eq!(s.iter_word_range(2..3).count(), 0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 200]);
    }

    #[test]
    fn chunked_kernels_match_serial_for_all_thread_counts() {
        // Big enough to split into multiple parallel chunks.
        let n = PAR_CHUNK_WORDS * 64 * 3 + 17;
        let a = RowSet::from_rows(n, (0..n).filter(|r| r % 3 == 0));
        let b = RowSet::from_rows(n, (0..n).filter(|r| r % 5 != 0));
        #[allow(clippy::type_complexity)]
        let ops: [(
            fn(&mut RowSet, &RowSet),
            fn(&mut RowSet, &RowSet, &ExecConfig),
        ); 3] = [
            (RowSet::intersect_with, |s, o, e| {
                s.intersect_with_exec(o, e).unwrap()
            }),
            (RowSet::union_with, |s, o, e| {
                s.union_with_exec(o, e).unwrap()
            }),
            (RowSet::and_not_with, |s, o, e| {
                s.and_not_with_exec(o, e).unwrap()
            }),
        ];
        for (serial_op, exec_op) in ops {
            let mut expect = a.clone();
            serial_op(&mut expect, &b);
            for threads in [1, 2, 4, 8] {
                let mut got = a.clone();
                exec_op(&mut got, &b, &ExecConfig::with_threads(threads));
                assert_eq!(got, expect, "threads={threads}");
            }
        }
        let mut x = RowSet::empty(5);
        assert!(x
            .intersect_with_exec(&RowSet::empty(6), &ExecConfig::serial())
            .is_err());
    }
}
