//! Hybrid row sets for fact-row sets (subspaces).
//!
//! A KDAP *subspace* DS′ is exactly a [`RowSet`] over the fact table.
//! Historically this was one flat `Vec<u64>` bitmap; at 10M+ rows that
//! costs 8 bytes per 64 rows regardless of density, and set algebra
//! always walks the whole universe. The hybrid layout splits the
//! universe into blocks of [`BLOCK_ROWS`] rows, each stored as whichever
//! container is smallest for its density (the Roaring design):
//!
//! * **Array** — sorted `u16` row offsets, for sparse blocks
//!   (≤ [`ARRAY_MAX`] rows);
//! * **Bitmap** — a 1024-word bitmap, for dense scattered blocks;
//! * **Run** — sorted `(start, end)` runs, for contiguous blocks
//!   (`full()` is one run per block).
//!
//! Containers auto-convert at density thresholds: an array grows into a
//! bitmap past [`ARRAY_MAX`], and every set-algebra result is
//! re-canonicalized to the smallest of the three forms. The public API —
//! `intersect/union/and_not`, their `try_` and `_exec` variants,
//! `iter`/`iter_word_range` — is unchanged from the flat bitmap;
//! word-granular entry points (`n_words`, `to_words`, `from_words`,
//! `for_each_in_word_range`) keep the chunked kernels and their
//! thread-count-invariant results working on top.

use crate::error::QueryError;
use crate::exec::{chunk_ranges, par_map, ExecConfig};
use crate::kernel;

/// Rows per block: matches the warehouse chunk size so one block of rows
/// corresponds to one packed column chunk.
pub const BLOCK_ROWS: usize = 1 << 16;

/// Words per full block bitmap.
const BLOCK_WORDS: usize = BLOCK_ROWS / 64;

/// Largest array container: beyond this many rows a block converts to a
/// bitmap (4096 × 2 bytes = the break-even point against 8 KiB bitmaps).
pub const ARRAY_MAX: usize = 4096;

/// Blocks per parallel chunk for the set-algebra kernels (1 MiB of
/// rows). Chunking depends only on set size, so chunked results are
/// identical for every thread count.
const PAR_CHUNK_BLOCKS: usize = 16;

/// Counts of each container type across a set of row sets — the
/// compression telemetry surfaced by `kdap stats` and the HTTP stats
/// endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContainerHistogram {
    /// Sparse blocks stored as sorted row arrays.
    pub arrays: usize,
    /// Dense scattered blocks stored as bitmaps.
    pub bitmaps: usize,
    /// Contiguous blocks stored as run lists.
    pub runs: usize,
}

impl ContainerHistogram {
    /// Accumulates another histogram into this one.
    pub fn merge(&mut self, other: &ContainerHistogram) {
        self.arrays += other.arrays;
        self.bitmaps += other.bitmaps;
        self.runs += other.runs;
    }

    /// Total container count.
    pub fn total(&self) -> usize {
        self.arrays + self.bitmaps + self.runs
    }
}

/// One block's physical container.
#[derive(Debug, Clone)]
enum Container {
    /// Sorted row offsets within the block.
    Array(Vec<u16>),
    /// Bitmap over the block's rows; `limit.div_ceil(64)` words.
    Bitmap(Box<[u64]>),
    /// Sorted, disjoint, non-adjacent inclusive `(start, end)` runs.
    Run(Vec<(u16, u16)>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetOp {
    And,
    Or,
    AndNot,
}

/// Sets bits `s..=e` in `words`.
fn set_bit_range(words: &mut [u64], s: usize, e: usize) {
    let (sw, sb) = (s / 64, s % 64);
    let (ew, eb) = (e / 64, e % 64);
    if sw == ew {
        let width = eb - sb + 1;
        let mask = if width == 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << sb
        };
        words[sw] |= mask;
    } else {
        words[sw] |= u64::MAX << sb;
        for w in &mut words[sw + 1..ew] {
            *w = u64::MAX;
        }
        words[ew] |= u64::MAX >> (63 - eb);
    }
}

impl Container {
    fn empty() -> Container {
        Container::Array(Vec::new())
    }

    fn cardinality(&self) -> usize {
        match self {
            Container::Array(a) => a.len(),
            Container::Bitmap(w) => kernel::popcount_words(w),
            Container::Run(rs) => rs.iter().map(|&(s, e)| e as usize - s as usize + 1).sum(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Container::Array(a) => a.is_empty(),
            Container::Bitmap(w) => w.iter().all(|&w| w == 0),
            Container::Run(rs) => rs.is_empty(),
        }
    }

    fn contains(&self, r: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&r).is_ok(),
            Container::Bitmap(w) => {
                let (wi, b) = (r as usize / 64, r as usize % 64);
                wi < w.len() && w[wi] >> b & 1 == 1
            }
            Container::Run(rs) => {
                let idx = rs.partition_point(|&(s, _)| s <= r);
                idx > 0 && rs[idx - 1].1 >= r
            }
        }
    }

    /// Inserts a row, converting the container when the current form
    /// can't absorb it (array past [`ARRAY_MAX`], run with a new
    /// non-contained row).
    fn insert(&mut self, r: u16, limit: usize) {
        match self {
            Container::Array(a) => match a.last() {
                // Fast path: ascending appends.
                Some(&last) if last < r => {
                    if a.len() == ARRAY_MAX {
                        *self = self.to_bitmap(limit);
                        self.insert(r, limit);
                    } else {
                        a.push(r);
                    }
                }
                None => a.push(r),
                _ => {
                    if let Err(pos) = a.binary_search(&r) {
                        if a.len() == ARRAY_MAX {
                            *self = self.to_bitmap(limit);
                            self.insert(r, limit);
                        } else {
                            a.insert(pos, r);
                        }
                    }
                }
            },
            Container::Bitmap(w) => w[r as usize / 64] |= 1u64 << (r as usize % 64),
            Container::Run(_) => {
                if !self.contains(r) {
                    *self = self.to_bitmap(limit);
                    self.insert(r, limit);
                }
            }
        }
    }

    fn to_bitmap(&self, limit: usize) -> Container {
        let mut words = vec![0u64; limit.div_ceil(64)];
        self.write_words(&mut words);
        Container::Bitmap(words.into_boxed_slice())
    }

    /// Writes this container's bits into `out` (zeroing it first).
    /// `out` must hold the block's word count.
    fn write_words(&self, out: &mut [u64]) {
        out.fill(0);
        match self {
            Container::Array(a) => {
                for &r in a {
                    out[r as usize / 64] |= 1u64 << (r as usize % 64);
                }
            }
            Container::Bitmap(w) => out[..w.len()].copy_from_slice(w),
            Container::Run(rs) => {
                for &(s, e) in rs {
                    set_bit_range(out, s as usize, e as usize);
                }
            }
        }
    }

    /// Builds the canonical (smallest) container for the given words.
    /// The two counting passes (popcount, 0→1 run transitions) run
    /// through the dispatched vectorized kernels.
    fn from_words(words: &[u64]) -> Container {
        let card = kernel::popcount_words(words);
        if card == 0 {
            return Container::empty();
        }
        let n_runs = kernel::count_run_starts(words);
        let run_bytes = n_runs * 4;
        let array_bytes = card * 2;
        let bitmap_bytes = words.len() * 8;
        if run_bytes < array_bytes.min(bitmap_bytes) {
            // Pair up run starts (0→1) and ends (1→0) in order.
            let mut runs = Vec::with_capacity(n_runs);
            let mut starts = Vec::with_capacity(n_runs);
            let mut carry = 0u64;
            for (wi, &w) in words.iter().enumerate() {
                let next = words.get(wi + 1).copied().unwrap_or(0);
                let mut sbits = w & !((w << 1) | carry);
                while sbits != 0 {
                    starts.push((wi * 64 + sbits.trailing_zeros() as usize) as u16);
                    sbits &= sbits - 1;
                }
                let mut ebits = w & !((w >> 1) | (next << 63));
                while ebits != 0 {
                    let e = (wi * 64 + ebits.trailing_zeros() as usize) as u16;
                    // Starts always lead ends, so one is available.
                    runs.push((starts[runs.len()], e));
                    ebits &= ebits - 1;
                }
                carry = w >> 63;
            }
            Container::Run(runs)
        } else if card <= ARRAY_MAX {
            let mut rows = Vec::with_capacity(card);
            for (wi, &w) in words.iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    rows.push((wi * 64 + w.trailing_zeros() as usize) as u16);
                    w &= w - 1;
                }
            }
            Container::Array(rows)
        } else {
            Container::Bitmap(words.to_vec().into_boxed_slice())
        }
    }

    /// True when this is a single run covering the whole block universe.
    fn covers_all(&self, limit: usize) -> bool {
        matches!(self, Container::Run(rs)
            if rs.len() == 1 && rs[0].0 == 0 && rs[0].1 as usize == limit - 1)
    }

    /// Visits every set row in `local_range` (block-local, ascending),
    /// offset by `base`. Bitmap blocks decode word-at-a-time (64 rows per
    /// load); run blocks iterate without any probing at all.
    fn for_each_range<F: FnMut(usize)>(
        &self,
        local_range: std::ops::Range<usize>,
        base: usize,
        f: &mut F,
    ) {
        match self {
            Container::Array(a) => {
                let lo = a.partition_point(|&r| (r as usize) < local_range.start);
                for &r in &a[lo..] {
                    if r as usize >= local_range.end {
                        break;
                    }
                    f(base + r as usize);
                }
            }
            Container::Bitmap(words) => {
                let start_w = local_range.start / 64;
                let end_w = local_range.end.div_ceil(64).min(words.len());
                for wi in start_w..end_w {
                    let mut w = words[wi];
                    if wi == start_w {
                        let lo = local_range.start % 64;
                        if lo > 0 {
                            w &= u64::MAX << lo;
                        }
                    }
                    if wi == end_w - 1 {
                        let hi = local_range.end - wi * 64;
                        if hi < 64 {
                            w &= (1u64 << hi) - 1;
                        }
                    }
                    let word_base = base + wi * 64;
                    while w != 0 {
                        f(word_base + w.trailing_zeros() as usize);
                        w &= w - 1;
                    }
                }
            }
            Container::Run(rs) => {
                for &(s, e) in rs {
                    let s = (s as usize).max(local_range.start);
                    let e = (e as usize + 1).min(local_range.end);
                    for r in s..e {
                        f(base + r);
                    }
                }
            }
        }
    }

    /// Next set row at or after `local`, if any.
    fn next_from(&self, local: usize) -> Option<usize> {
        match self {
            Container::Array(a) => {
                let idx = a.partition_point(|&r| (r as usize) < local);
                a.get(idx).map(|&r| r as usize)
            }
            Container::Bitmap(words) => {
                let mut wi = local / 64;
                if wi >= words.len() {
                    return None;
                }
                let mut w = words[wi] & (u64::MAX << (local % 64));
                loop {
                    if w != 0 {
                        return Some(wi * 64 + w.trailing_zeros() as usize);
                    }
                    wi += 1;
                    if wi >= words.len() {
                        return None;
                    }
                    w = words[wi];
                }
            }
            Container::Run(rs) => {
                let idx = rs.partition_point(|&(s, _)| (s as usize) <= local);
                if idx > 0 && rs[idx - 1].1 as usize >= local {
                    return Some(local);
                }
                rs.get(idx).map(|&(s, _)| s as usize)
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Container::Array(a) => a.capacity() * 2,
            Container::Bitmap(w) => w.len() * 8,
            Container::Run(rs) => rs.capacity() * 4,
        }
    }
}

/// Combines two blocks. `limit` is the block's universe (rows valid in
/// it); inputs never hold bits past `limit`, so neither does the result.
fn op_block(a: &Container, b: &Container, op: SetOp, limit: usize) -> Container {
    // Cheap structural fast paths before any materialization.
    match op {
        SetOp::And => {
            if a.is_empty() || b.is_empty() {
                return Container::empty();
            }
            if a.covers_all(limit) {
                return b.clone();
            }
            if b.covers_all(limit) {
                return a.clone();
            }
        }
        SetOp::Or => {
            if a.covers_all(limit) || b.is_empty() {
                return a.clone();
            }
            if b.covers_all(limit) || a.is_empty() {
                return b.clone();
            }
        }
        SetOp::AndNot => {
            if a.is_empty() || b.covers_all(limit) {
                return Container::empty();
            }
            if b.is_empty() {
                return a.clone();
            }
        }
    }
    // Array-driven paths: probe or merge without touching full bitmaps.
    match (a, b, op) {
        (Container::Array(xs), Container::Array(ys), SetOp::And) => {
            Container::Array(merge_arrays(xs, ys, SetOp::And))
        }
        (Container::Array(xs), Container::Array(ys), SetOp::AndNot) => {
            Container::Array(merge_arrays(xs, ys, SetOp::AndNot))
        }
        (Container::Array(xs), Container::Array(ys), SetOp::Or) => {
            let merged = merge_arrays(xs, ys, SetOp::Or);
            if merged.len() <= ARRAY_MAX {
                Container::Array(merged)
            } else {
                let mut out = Container::Array(merged).to_bitmap(limit);
                if let Container::Bitmap(w) = &out {
                    out = Container::from_words(w);
                }
                out
            }
        }
        (Container::Array(xs), _, SetOp::And) => {
            Container::Array(xs.iter().copied().filter(|&r| b.contains(r)).collect())
        }
        (Container::Array(xs), _, SetOp::AndNot) => {
            Container::Array(xs.iter().copied().filter(|&r| !b.contains(r)).collect())
        }
        (_, Container::Array(ys), SetOp::And) => {
            Container::Array(ys.iter().copied().filter(|&r| a.contains(r)).collect())
        }
        _ => {
            // General path: materialize both sides to words, combine with
            // one dispatched vectorized pass, re-canonicalize the result.
            let n_words = limit.div_ceil(64);
            let mut wa = [0u64; BLOCK_WORDS];
            let mut wb = [0u64; BLOCK_WORDS];
            a.write_words(&mut wa[..n_words]);
            b.write_words(&mut wb[..n_words]);
            match op {
                SetOp::And => kernel::and_words(&mut wa[..n_words], &wb[..n_words]),
                SetOp::Or => kernel::or_words(&mut wa[..n_words], &wb[..n_words]),
                SetOp::AndNot => kernel::andnot_words(&mut wa[..n_words], &wb[..n_words]),
            }
            Container::from_words(&wa[..n_words])
        }
    }
}

/// Merges two sorted arrays under `op`.
fn merge_arrays(xs: &[u16], ys: &[u16], op: SetOp) -> Vec<u16> {
    let mut out = Vec::with_capacity(match op {
        SetOp::And => xs.len().min(ys.len()),
        SetOp::Or => xs.len() + ys.len(),
        SetOp::AndNot => xs.len(),
    });
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => {
                if op != SetOp::And {
                    out.push(xs[i]);
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if op == SetOp::Or {
                    out.push(ys[j]);
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if op != SetOp::AndNot {
                    out.push(xs[i]);
                }
                i += 1;
                j += 1;
            }
        }
    }
    if op != SetOp::And {
        out.extend_from_slice(&xs[i..]);
    }
    if op == SetOp::Or {
        out.extend_from_slice(&ys[j..]);
    }
    out
}

/// A set of row indices over a table of known size, stored as one hybrid
/// container (array / bitmap / run) per [`BLOCK_ROWS`]-row block.
#[derive(Debug, Clone)]
pub struct RowSet {
    blocks: Vec<Container>,
    nrows: usize,
}

impl RowSet {
    fn n_blocks(nrows: usize) -> usize {
        nrows.div_ceil(BLOCK_ROWS)
    }

    /// Rows valid in block `b` (== `BLOCK_ROWS` except the last block).
    fn block_limit(&self, b: usize) -> usize {
        (self.nrows - b * BLOCK_ROWS).min(BLOCK_ROWS)
    }

    /// Empty set over `nrows` rows.
    pub fn empty(nrows: usize) -> Self {
        RowSet {
            blocks: (0..Self::n_blocks(nrows))
                .map(|_| Container::empty())
                .collect(),
            nrows,
        }
    }

    /// Full set over `nrows` rows — one run container per block.
    pub fn full(nrows: usize) -> Self {
        let mut s = RowSet::empty(nrows);
        for b in 0..s.blocks.len() {
            let limit = s.block_limit(b);
            s.blocks[b] = Container::Run(vec![(0, (limit - 1) as u16)]);
        }
        s
    }

    /// Builds a set from explicit row indices.
    pub fn from_rows(nrows: usize, rows: impl IntoIterator<Item = usize>) -> Self {
        let mut s = RowSet::empty(nrows);
        for r in rows {
            s.insert(r);
        }
        s
    }

    /// Builds a set from its flat word representation. `words` must hold
    /// exactly `nrows.div_ceil(64)` words with no bits past `nrows`; a
    /// stray trailing bit yields [`QueryError::TrailingBits`].
    pub fn from_words(nrows: usize, words: Vec<u64>) -> Result<Self, QueryError> {
        if words.len() != nrows.div_ceil(64) {
            return Err(QueryError::RowOutOfRange {
                row: words.len() * 64,
                universe: nrows,
            });
        }
        if let Some(&last) = words.last() {
            let bits = nrows - (words.len() - 1) * 64;
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let stray = last & !mask;
            if stray != 0 {
                return Err(QueryError::TrailingBits {
                    universe: nrows,
                    trailing: stray.count_ones(),
                });
            }
        }
        let mut s = RowSet::empty(nrows);
        for b in 0..s.blocks.len() {
            let start_w = b * BLOCK_WORDS;
            let end_w = (start_w + BLOCK_WORDS).min(words.len());
            s.blocks[b] = Container::from_words(&words[start_w..end_w]);
        }
        Ok(s)
    }

    /// Number of words in the flat `u64` representation
    /// (`nrows.div_ceil(64)`). Chunked kernels partition work by word
    /// index, which keeps their results identical for every thread count.
    pub fn n_words(&self) -> usize {
        self.nrows.div_ceil(64)
    }

    /// Materializes the flat word representation (least-significant bit =
    /// lowest row) — for fingerprinting and equivalence checks, not hot
    /// paths.
    pub fn to_words(&self) -> Vec<u64> {
        let mut words = vec![0u64; self.n_words()];
        for (b, c) in self.blocks.iter().enumerate() {
            let start_w = b * BLOCK_WORDS;
            let end_w = (start_w + BLOCK_WORDS).min(words.len());
            c.write_words(&mut words[start_w..end_w]);
        }
        words
    }

    /// Number of rows in the underlying table.
    pub fn universe(&self) -> usize {
        self.nrows
    }

    /// Heap footprint of the hybrid containers in bytes. Memory-budget
    /// accounting charges this for every freshly materialized set.
    pub fn heap_bytes(&self) -> u64 {
        let containers: usize = self.blocks.iter().map(Container::heap_bytes).sum();
        (containers + self.blocks.capacity() * std::mem::size_of::<Container>()) as u64
    }

    /// Counts this set's blocks by container type.
    pub fn container_histogram(&self) -> ContainerHistogram {
        let mut h = ContainerHistogram::default();
        for c in &self.blocks {
            match c {
                Container::Array(_) => h.arrays += 1,
                Container::Bitmap(_) => h.bitmaps += 1,
                Container::Run(_) => h.runs += 1,
            }
        }
        h
    }

    /// Inserts one row. Panics when out of range (programming error).
    pub fn insert(&mut self, row: usize) {
        assert!(row < self.nrows, "row {row} out of range {}", self.nrows);
        let b = row / BLOCK_ROWS;
        let limit = self.block_limit(b);
        self.blocks[b].insert((row % BLOCK_ROWS) as u16, limit);
    }

    /// Membership test.
    pub fn contains(&self, row: usize) -> bool {
        row < self.nrows && self.blocks[row / BLOCK_ROWS].contains((row % BLOCK_ROWS) as u16)
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(Container::cardinality).sum()
    }

    /// True when no row is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(Container::is_empty)
    }

    fn check_universe(&self, other: &RowSet) -> Result<(), QueryError> {
        if self.nrows == other.nrows {
            Ok(())
        } else {
            Err(QueryError::UniverseMismatch {
                left: self.nrows,
                right: other.nrows,
            })
        }
    }

    fn zip_blocks(&mut self, other: &RowSet, op: SetOp) {
        for b in 0..self.blocks.len() {
            let limit = self.block_limit(b);
            self.blocks[b] = op_block(&self.blocks[b], &other.blocks[b], op, limit);
        }
    }

    /// In-place intersection. Panics on mismatched universes.
    pub fn intersect_with(&mut self, other: &RowSet) {
        assert_eq!(self.nrows, other.nrows, "universe mismatch");
        self.zip_blocks(other, SetOp::And);
    }

    /// Fallible in-place intersection.
    pub fn try_intersect_with(&mut self, other: &RowSet) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.zip_blocks(other, SetOp::And);
        Ok(())
    }

    /// In-place union. Panics on mismatched universes.
    pub fn union_with(&mut self, other: &RowSet) {
        assert_eq!(self.nrows, other.nrows, "universe mismatch");
        self.zip_blocks(other, SetOp::Or);
    }

    /// Fallible in-place union.
    pub fn try_union_with(&mut self, other: &RowSet) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.zip_blocks(other, SetOp::Or);
        Ok(())
    }

    /// In-place difference (`self \ other`). Panics on mismatched
    /// universes.
    pub fn and_not_with(&mut self, other: &RowSet) {
        assert_eq!(self.nrows, other.nrows, "universe mismatch");
        self.zip_blocks(other, SetOp::AndNot);
    }

    /// Fallible in-place difference.
    pub fn try_and_not_with(&mut self, other: &RowSet) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.zip_blocks(other, SetOp::AndNot);
        Ok(())
    }

    /// Applies a set operation block-by-block, fanning block ranges out
    /// over `exec`'s workers. Each block's result depends only on the two
    /// operand blocks, and results are written back in block order, so
    /// the outcome is identical for every thread count.
    fn zip_blocks_exec(&mut self, other: &RowSet, exec: &ExecConfig, op: SetOp) {
        if exec.is_serial() || self.blocks.len() < 2 * PAR_CHUNK_BLOCKS {
            self.zip_blocks(other, op);
            return;
        }
        let ranges = chunk_ranges(self.blocks.len(), PAR_CHUNK_BLOCKS);
        let blocks = &self.blocks;
        let nrows = self.nrows;
        let results: Vec<Vec<Container>> = par_map(exec, &ranges, |_, r| {
            r.clone()
                .map(|b| {
                    let limit = (nrows - b * BLOCK_ROWS).min(BLOCK_ROWS);
                    op_block(&blocks[b], &other.blocks[b], op, limit)
                })
                .collect()
        });
        let mut out = Vec::with_capacity(self.blocks.len());
        for chunk in results {
            out.extend(chunk);
        }
        self.blocks = out;
    }

    /// Chunked intersection over `exec`'s workers.
    pub fn intersect_with_exec(
        &mut self,
        other: &RowSet,
        exec: &ExecConfig,
    ) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.zip_blocks_exec(other, exec, SetOp::And);
        Ok(())
    }

    /// Chunked union over `exec`'s workers.
    pub fn union_with_exec(&mut self, other: &RowSet, exec: &ExecConfig) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.zip_blocks_exec(other, exec, SetOp::Or);
        Ok(())
    }

    /// Chunked difference over `exec`'s workers.
    pub fn and_not_with_exec(
        &mut self,
        other: &RowSet,
        exec: &ExecConfig,
    ) -> Result<(), QueryError> {
        self.check_universe(other)?;
        self.zip_blocks_exec(other, exec, SetOp::AndNot);
        Ok(())
    }

    /// Iterates set rows in ascending order.
    pub fn iter(&self) -> RowIter<'_> {
        self.iter_word_range(0..self.n_words())
    }

    /// Iterator over the rows encoded in the given word range of the flat
    /// representation. Sparse containers iterate in time proportional to
    /// their occupancy rather than the universe. Chunked kernels hand
    /// each worker a sub-range of words.
    pub fn iter_word_range(&self, words: std::ops::Range<usize>) -> RowIter<'_> {
        let start = words.start * 64;
        let end = (words.end * 64).min(self.nrows);
        RowIter {
            set: self,
            cur: start,
            end: end.max(start),
        }
    }

    /// Collects every set row in the given word range into `out`
    /// (cleared first) as `u32` row indices, in ascending order — the
    /// gather-buffer feeder for batch kernels that want a materialized
    /// index list (one tight pass per block) instead of a per-row
    /// callback. The universe must fit in `u32` (callers with > 4Bi rows
    /// keep the callback path).
    pub fn collect_rows_in_word_range(&self, words: std::ops::Range<usize>, out: &mut Vec<u32>) {
        debug_assert!(self.nrows <= u32::MAX as usize + 1);
        out.clear();
        self.for_each_in_word_range(words, |r| out.push(r as u32));
    }

    /// Visits every set row in the given word range in ascending order —
    /// the tight-loop twin of [`RowSet::iter_word_range`] for hot
    /// kernels: bitmap blocks decode 64 rows per word load, run blocks
    /// iterate with no probing, and the callback is invoked directly
    /// without iterator state.
    pub fn for_each_in_word_range<F: FnMut(usize)>(&self, words: std::ops::Range<usize>, mut f: F) {
        let start = words.start * 64;
        let end = (words.end * 64).min(self.nrows);
        let mut row = start;
        while row < end {
            let b = row / BLOCK_ROWS;
            let base = b * BLOCK_ROWS;
            let local_start = row - base;
            let local_end = (end - base).min(BLOCK_ROWS);
            self.blocks[b].for_each_range(local_start..local_end, base, &mut f);
            row = base + local_end;
        }
    }
}

impl PartialEq for RowSet {
    fn eq(&self, other: &Self) -> bool {
        if self.nrows != other.nrows {
            return false;
        }
        // Compare semantically: equal sets may sit in different container
        // forms (e.g. an insert-built bitmap vs an op-canonicalized run).
        let mut wa = [0u64; BLOCK_WORDS];
        let mut wb = [0u64; BLOCK_WORDS];
        for (b, (x, y)) in self.blocks.iter().zip(&other.blocks).enumerate() {
            let n_words = self.block_limit(b).div_ceil(64);
            x.write_words(&mut wa[..n_words]);
            y.write_words(&mut wb[..n_words]);
            if wa[..n_words] != wb[..n_words] {
                return false;
            }
        }
        true
    }
}

impl Eq for RowSet {}

/// Ascending row iterator over a [`RowSet`] range; see
/// [`RowSet::iter_word_range`].
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    set: &'a RowSet,
    cur: usize,
    end: usize,
}

impl Iterator for RowIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.cur < self.end {
            let b = self.cur / BLOCK_ROWS;
            match self.set.blocks[b].next_from(self.cur % BLOCK_ROWS) {
                Some(local) => {
                    let row = b * BLOCK_ROWS + local;
                    if row >= self.end {
                        return None;
                    }
                    self.cur = row + 1;
                    return Some(row);
                }
                None => self.cur = (b + 1) * BLOCK_ROWS,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = RowSet::empty(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = RowSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.contains(69));
        assert!(!f.contains(70));
    }

    #[test]
    fn full_has_no_stray_bits_past_end() {
        for n in [1usize, 63, 64, 65, 128, 130, BLOCK_ROWS, BLOCK_ROWS + 1] {
            let f = RowSet::full(n);
            assert_eq!(f.len(), n, "n={n}");
            let words = f.to_words();
            let bits: usize = words.iter().map(|w| w.count_ones() as usize).sum();
            assert_eq!(bits, n, "n={n}");
        }
        assert_eq!(RowSet::full(0).len(), 0);
    }

    #[test]
    fn full_uses_run_containers() {
        let f = RowSet::full(BLOCK_ROWS * 2 + 100);
        let h = f.container_histogram();
        assert_eq!(
            h,
            ContainerHistogram {
                arrays: 0,
                bitmaps: 0,
                runs: 3
            }
        );
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn insert_contains_iter() {
        let mut s = RowSet::empty(100);
        s.insert(0);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(64));
        assert!(!s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 99]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn array_converts_to_bitmap_past_threshold() {
        let n = BLOCK_ROWS;
        let mut s = RowSet::empty(n);
        for r in 0..ARRAY_MAX {
            s.insert(r * 2);
        }
        assert_eq!(s.container_histogram().arrays, 1);
        s.insert(ARRAY_MAX * 2); // one past the array limit
        let h = s.container_histogram();
        assert_eq!((h.arrays, h.bitmaps), (0, 1));
        assert_eq!(s.len(), ARRAY_MAX + 1);
        for r in 0..=ARRAY_MAX {
            assert!(s.contains(r * 2), "row {}", r * 2);
        }
    }

    #[test]
    fn run_absorbs_contained_inserts_and_converts_otherwise() {
        let mut s = RowSet::full(100);
        s.insert(50); // contained: run container survives
        assert_eq!(s.container_histogram().runs, 1);
        let mut t = RowSet::from_words(200, {
            let mut f = RowSet::full(100).to_words();
            f.resize(4, 0);
            f
        })
        .unwrap();
        // Blocks are canonicalized: rows 0..100 of a 200-universe → run.
        assert_eq!(t.container_histogram().runs, 1);
        t.insert(150); // outside the run → converts to bitmap
        assert!(t.contains(150));
        assert_eq!(t.len(), 101);
    }

    #[test]
    fn set_algebra() {
        let a = RowSet::from_rows(10, [1, 2, 3]);
        let b = RowSet::from_rows(10, [2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn set_algebra_across_container_kinds() {
        let n = BLOCK_ROWS * 2 + 500;
        let full = RowSet::full(n); // runs
        let sparse = RowSet::from_rows(n, (0..n).step_by(1000)); // arrays
        let dense = RowSet::from_rows(n, (0..n).filter(|r| r % 3 != 0)); // bitmaps
        for x in [&full, &sparse, &dense] {
            for y in [&full, &sparse, &dense] {
                let mut i = x.clone();
                i.intersect_with(y);
                let mut u = x.clone();
                u.union_with(y);
                let mut d = x.clone();
                d.and_not_with(y);
                let xs: std::collections::HashSet<usize> = x.iter().collect();
                let ys: std::collections::HashSet<usize> = y.iter().collect();
                assert_eq!(i.len(), xs.intersection(&ys).count());
                assert_eq!(u.len(), xs.union(&ys).count());
                assert_eq!(d.len(), xs.difference(&ys).count());
            }
        }
    }

    #[test]
    fn ops_canonicalize_to_smallest_container() {
        let n = BLOCK_ROWS;
        // Dense bitmap minus almost everything → tiny scattered array.
        let mut a = RowSet::from_rows(n, (0..n).step_by(2));
        let b = RowSet::from_rows(n, (20..n).step_by(2));
        a.and_not_with(&b);
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            (0..20).step_by(2).collect::<Vec<_>>()
        );
        assert_eq!(a.container_histogram().arrays, 1);
        // Contiguous residuals canonicalize all the way to runs.
        let mut c = RowSet::from_rows(n, 0..n - 1);
        c.and_not_with(&RowSet::from_rows(n, 10..n - 1));
        assert_eq!(c.len(), 10);
        assert_eq!(c.container_histogram().runs, 1);
        // Two half-range unions → one run container.
        let lo = RowSet::from_rows(n, 0..n / 2);
        let hi = RowSet::from_rows(n, n / 2..n);
        let mut u = lo.clone();
        u.union_with(&hi);
        assert_eq!(u.len(), n);
        assert_eq!(u.container_histogram().runs, 1);
        assert!(u.heap_bytes() < 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        RowSet::empty(5).insert(5);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universe_panics() {
        let mut a = RowSet::empty(5);
        a.intersect_with(&RowSet::empty(6));
    }

    #[test]
    fn try_variants_surface_typed_errors() {
        let mut a = RowSet::empty(5);
        let err = a.try_intersect_with(&RowSet::empty(6)).unwrap_err();
        assert_eq!(err, QueryError::UniverseMismatch { left: 5, right: 6 });
        assert!(a.try_union_with(&RowSet::empty(6)).is_err());
        assert!(a.try_and_not_with(&RowSet::empty(6)).is_err());
        assert!(a.try_intersect_with(&RowSet::full(5)).is_ok());
    }

    #[test]
    fn and_not_removes_rows() {
        let mut a = RowSet::from_rows(10, [1, 2, 3]);
        a.and_not_with(&RowSet::from_rows(10, [2, 4]));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn words_round_trip() {
        let a = RowSet::from_rows(130, [0, 64, 129]);
        let b = RowSet::from_words(130, a.to_words()).unwrap();
        assert_eq!(a, b);
        // Wrong word count is rejected.
        assert!(RowSet::from_words(130, vec![0; 2]).is_err());
        // Round-trip across block boundaries.
        let n = BLOCK_ROWS + 77;
        let c = RowSet::from_rows(n, (0..n).step_by(13));
        assert_eq!(RowSet::from_words(n, c.to_words()).unwrap(), c);
    }

    #[test]
    fn trailing_bits_past_universe_are_a_typed_error() {
        // 130-row universe: the last word may only use bits 0 and 1.
        let err = RowSet::from_words(130, vec![0, 0, u64::MAX]).unwrap_err();
        assert_eq!(
            err,
            QueryError::TrailingBits {
                universe: 130,
                trailing: 62,
            }
        );
        let err = RowSet::from_words(64, vec![u64::MAX]).map(|_| ());
        assert_eq!(err, Ok(())); // exactly 64 rows: all bits valid
        let err = RowSet::from_words(63, vec![u64::MAX]).unwrap_err();
        assert!(matches!(err, QueryError::TrailingBits { trailing: 1, .. }));
    }

    #[test]
    fn equality_is_semantic_across_representations() {
        let n = BLOCK_ROWS;
        // Same rows, three different container forms.
        let via_inserts = RowSet::from_rows(n, 0..n); // bitmap (insert-built)
        let via_full = RowSet::full(n); // run
        assert_ne!(
            via_inserts.container_histogram(),
            via_full.container_histogram()
        );
        assert_eq!(via_inserts, via_full);
        let mut different = via_full.clone();
        different.and_not_with(&RowSet::from_rows(n, [77]));
        assert_ne!(different, via_full);
    }

    #[test]
    fn word_range_iteration() {
        let s = RowSet::from_rows(256, [0, 63, 64, 200]);
        assert_eq!(s.iter_word_range(0..1).collect::<Vec<_>>(), vec![0, 63]);
        assert_eq!(s.iter_word_range(1..4).collect::<Vec<_>>(), vec![64, 200]);
        assert_eq!(s.iter_word_range(2..3).count(), 0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 200]);
    }

    #[test]
    fn for_each_matches_iter_on_every_container_kind() {
        let n = BLOCK_ROWS * 2 + 300;
        let sets = [
            RowSet::full(n),
            RowSet::from_rows(n, (0..n).step_by(701)),
            RowSet::from_rows(n, (0..n).filter(|r| r % 2 == 0)),
            RowSet::empty(n),
        ];
        for s in &sets {
            // Whole-set scan.
            let mut seen = Vec::new();
            s.for_each_in_word_range(0..s.n_words(), |r| seen.push(r));
            assert_eq!(seen, s.iter().collect::<Vec<_>>());
            // Sub-word-range scans, including block-straddling ones.
            for range in [
                0..2,
                5..9,
                1020..1030,
                (BLOCK_ROWS / 64 - 1)..(BLOCK_ROWS / 64 + 2),
            ] {
                let mut seen = Vec::new();
                s.for_each_in_word_range(range.clone(), |r| seen.push(r));
                assert_eq!(
                    seen,
                    s.iter_word_range(range.clone()).collect::<Vec<_>>(),
                    "range {range:?}"
                );
            }
        }
    }

    #[test]
    fn heap_bytes_tracks_density() {
        let n = BLOCK_ROWS * 8;
        let full = RowSet::full(n);
        let sparse = RowSet::from_rows(n, (0..n).step_by(10_000));
        let dense = RowSet::from_rows(n, (0..n).filter(|r| r % 3 == 0));
        // Runs and arrays are orders of magnitude below the flat bitmap
        // cost (n/8 bytes); insert-built dense sets pay the bitmap cost.
        assert!(full.heap_bytes() < 2048, "{}", full.heap_bytes());
        assert!(sparse.heap_bytes() < 8192, "{}", sparse.heap_bytes());
        assert!(dense.heap_bytes() >= (n / 8) as u64);
    }

    #[test]
    fn chunked_kernels_match_serial_for_all_thread_counts() {
        // Big enough to split into multiple parallel chunks.
        let n = PAR_CHUNK_BLOCKS * BLOCK_ROWS * 3 + 17;
        let a = RowSet::from_rows(n, (0..n).filter(|r| r % 3 == 0));
        let b = RowSet::from_rows(n, (0..n).filter(|r| r % 5 != 0));
        #[allow(clippy::type_complexity)]
        let ops: [(
            fn(&mut RowSet, &RowSet),
            fn(&mut RowSet, &RowSet, &ExecConfig),
        ); 3] = [
            (RowSet::intersect_with, |s, o, e| {
                s.intersect_with_exec(o, e).unwrap()
            }),
            (RowSet::union_with, |s, o, e| {
                s.union_with_exec(o, e).unwrap()
            }),
            (RowSet::and_not_with, |s, o, e| {
                s.and_not_with_exec(o, e).unwrap()
            }),
        ];
        for (serial_op, exec_op) in ops {
            let mut expect = a.clone();
            serial_op(&mut expect, &b);
            for threads in [1, 2, 4, 8] {
                let mut got = a.clone();
                exec_op(&mut got, &b, &ExecConfig::with_threads(threads));
                assert_eq!(got, expect, "threads={threads}");
            }
        }
        let mut x = RowSet::empty(5);
        assert!(x
            .intersect_with_exec(&RowSet::empty(6), &ExecConfig::serial())
            .is_err());
    }
}
