//! Fixed-width row bitmaps for fact-row sets (subspaces).

/// A set of row indices over a table of known size, stored as a bitmap.
///
/// A KDAP *subspace* DS′ is exactly a `RowSet` over the fact table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSet {
    words: Vec<u64>,
    nrows: usize,
}

impl RowSet {
    /// Empty set over `nrows` rows.
    pub fn empty(nrows: usize) -> Self {
        RowSet {
            words: vec![0; nrows.div_ceil(64)],
            nrows,
        }
    }

    /// Full set over `nrows` rows.
    pub fn full(nrows: usize) -> Self {
        let mut s = RowSet::empty(nrows);
        for (i, w) in s.words.iter_mut().enumerate() {
            let base = i * 64;
            let bits = nrows.saturating_sub(base).min(64);
            *w = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        }
        s
    }

    /// Builds a set from explicit row indices.
    pub fn from_rows(nrows: usize, rows: impl IntoIterator<Item = usize>) -> Self {
        let mut s = RowSet::empty(nrows);
        for r in rows {
            s.insert(r);
        }
        s
    }

    /// Number of rows in the underlying table.
    pub fn universe(&self) -> usize {
        self.nrows
    }

    /// Inserts one row. Panics when out of range (programming error).
    pub fn insert(&mut self, row: usize) {
        assert!(row < self.nrows, "row {row} out of range {}", self.nrows);
        self.words[row / 64] |= 1u64 << (row % 64);
    }

    /// Membership test.
    pub fn contains(&self, row: usize) -> bool {
        row < self.nrows && self.words[row / 64] & (1u64 << (row % 64)) != 0
    }

    /// Number of rows in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no row is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection. Panics on mismatched universes.
    pub fn intersect_with(&mut self, other: &RowSet) {
        assert_eq!(self.nrows, other.nrows, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union. Panics on mismatched universes.
    pub fn union_with(&mut self, other: &RowSet) {
        assert_eq!(self.nrows, other.nrows, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates set rows in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(i * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = RowSet::empty(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = RowSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.contains(69));
        assert!(!f.contains(70));
    }

    #[test]
    fn full_has_no_stray_bits_past_end() {
        for n in [1usize, 63, 64, 65, 128, 130] {
            let f = RowSet::full(n);
            assert_eq!(f.len(), n, "n={n}");
        }
        assert_eq!(RowSet::full(0).len(), 0);
    }

    #[test]
    fn insert_contains_iter() {
        let mut s = RowSet::empty(100);
        s.insert(0);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(64));
        assert!(!s.contains(1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 99]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn set_algebra() {
        let a = RowSet::from_rows(10, [1, 2, 3]);
        let b = RowSet::from_rows(10, [2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        RowSet::empty(5).insert(5);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universe_panics() {
        let mut a = RowSet::empty(5);
        a.intersect_with(&RowSet::empty(6));
    }
}
