//! Per-query governance: deadlines, cooperative cancellation, and memory
//! budgets.
//!
//! A [`QueryContext`] travels inside [`ExecConfig`](crate::ExecConfig) and
//! is consulted by every chunked kernel at *chunk granularity*: bitmap set
//! algebra, semi-join step execution, and the fused `multi_group_by`
//! scans. A breach (deadline passed, token cancelled, budget exhausted)
//! surfaces as [`QueryError::Governed`](crate::QueryError) carrying the
//! observability stage name where the check fired and how far the stage
//! had progressed — so a timed-out query reports *where* the time went.
//!
//! Design constraints:
//!
//! * **Cheap when off.** An ungoverned `ExecConfig` holds `None`; every
//!   check is a single branch. The `exp_obs` bench bounds the overhead of
//!   the instrumented build at ≤2%.
//! * **Cooperative.** Nothing is interrupted mid-chunk; kernels poll
//!   between chunks and unwind with an error. Callers must therefore not
//!   publish partial state (see the staged cache commits in
//!   [`plan`](crate::plan)).
//! * **Clock reads are bounded.** `Instant::now()` is only taken when a
//!   deadline is actually set; cancellation and budget checks are plain
//!   atomic loads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::QueryError;

/// Why a governed query was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Breach {
    /// The per-query deadline passed.
    Timeout {
        /// Wall-clock time elapsed since the context was created, in ms.
        elapsed_ms: u64,
    },
    /// The cancellation token was set (e.g. REPL Ctrl-C).
    Cancelled,
    /// Charged allocations exceeded the memory budget.
    Budget {
        /// The configured budget in bytes.
        budget_bytes: u64,
        /// Bytes charged at the moment the budget was breached.
        charged_bytes: u64,
    },
}

/// Per-query governance state: one deadline, one cancellation flag, one
/// memory budget, shared by every worker thread of the query via `Arc`.
///
/// The memory budget counts *charged* allocations — accumulator arrays
/// and result bitmaps, the allocations whose size scales with data
/// cardinality — cumulatively over the query, not peak RSS. See
/// `DESIGN.md` § Query governance for the accounting model.
#[derive(Debug)]
pub struct QueryContext {
    started: Instant,
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
    budget: Option<u64>,
    charged: AtomicU64,
}

impl QueryContext {
    /// A context enforcing the given limits. `cancel` is shared so a
    /// signal handler (or another thread) can flip it mid-query.
    pub fn new(
        deadline: Option<Duration>,
        budget_bytes: Option<u64>,
        cancel: Arc<AtomicBool>,
    ) -> Self {
        let started = Instant::now();
        QueryContext {
            started,
            deadline: deadline.map(|d| started + d),
            cancel,
            budget: budget_bytes,
            charged: AtomicU64::new(0),
        }
    }

    /// A context with no limits at all (checks always pass). Useful as a
    /// neutral element in tests.
    pub fn unlimited() -> Self {
        QueryContext::new(None, None, Arc::new(AtomicBool::new(false)))
    }

    /// Polls cancellation and the deadline. `stage` is the observability
    /// span name of the surrounding work; `completed`/`total` report the
    /// stage's chunk- or step-level progress (pass `0, 0` when the stage
    /// has no meaningful sub-progress).
    #[inline]
    pub fn check_at(
        &self,
        stage: &'static str,
        completed: u64,
        total: u64,
    ) -> Result<(), QueryError> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(QueryError::Governed {
                breach: Breach::Cancelled,
                stage,
                completed,
                total,
            });
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(QueryError::Governed {
                    breach: Breach::Timeout {
                        elapsed_ms: now.duration_since(self.started).as_millis() as u64,
                    },
                    stage,
                    completed,
                    total,
                });
            }
        }
        Ok(())
    }

    /// [`check_at`](Self::check_at) without progress information.
    #[inline]
    pub fn check(&self, stage: &'static str) -> Result<(), QueryError> {
        self.check_at(stage, 0, 0)
    }

    /// Charges `bytes` of accumulator/bitmap allocation against the
    /// budget and fails when the cumulative total exceeds it.
    #[inline]
    pub fn charge(&self, stage: &'static str, bytes: u64) -> Result<(), QueryError> {
        let total = self.charged.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if let Some(budget) = self.budget {
            if total > budget {
                return Err(QueryError::Governed {
                    breach: Breach::Budget {
                        budget_bytes: budget,
                        charged_bytes: total,
                    },
                    stage,
                    completed: 0,
                    total: 0,
                });
            }
        }
        Ok(())
    }

    /// Bytes charged against the budget so far.
    pub fn charged(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }

    /// True once the cancellation token has been set.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Wall-clock time since the context was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_context_always_passes() {
        let ctx = QueryContext::unlimited();
        assert!(ctx.check("stage").is_ok());
        assert!(ctx.charge("stage", u64::MAX / 2).is_ok());
        assert!(!ctx.is_cancelled());
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let ctx = QueryContext::new(Some(Duration::ZERO), None, Arc::new(AtomicBool::new(false)));
        let err = ctx.check_at("explore.scan_a", 3, 10).unwrap_err();
        match err {
            QueryError::Governed {
                breach: Breach::Timeout { .. },
                stage,
                completed,
                total,
            } => {
                assert_eq!(stage, "explore.scan_a");
                assert_eq!((completed, total), (3, 10));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let cancel = Arc::new(AtomicBool::new(true));
        let ctx = QueryContext::new(Some(Duration::ZERO), None, cancel);
        assert!(matches!(
            ctx.check("semijoin"),
            Err(QueryError::Governed {
                breach: Breach::Cancelled,
                ..
            })
        ));
    }

    #[test]
    fn budget_is_cumulative() {
        let ctx = QueryContext::new(None, Some(100), Arc::new(AtomicBool::new(false)));
        assert!(ctx.charge("multi_group_by", 60).is_ok());
        let err = ctx.charge("multi_group_by", 60).unwrap_err();
        match err {
            QueryError::Governed {
                breach:
                    Breach::Budget {
                        budget_bytes,
                        charged_bytes,
                    },
                ..
            } => {
                assert_eq!(budget_bytes, 100);
                assert_eq!(charged_bytes, 120);
            }
            other => panic!("expected budget breach, got {other:?}"),
        }
        assert_eq!(ctx.charged(), 120);
    }

    #[test]
    fn cancel_token_is_shared() {
        let cancel = Arc::new(AtomicBool::new(false));
        let ctx = QueryContext::new(None, None, cancel.clone());
        assert!(ctx.check("explore").is_ok());
        cancel.store(true, Ordering::Relaxed);
        assert!(ctx.check("explore").is_err());
        assert!(ctx.is_cancelled());
    }
}
