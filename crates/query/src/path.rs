//! Join paths through the schema graph.
//!
//! A [`JoinPath`] is an ordered sequence of FK edges walked *child →
//! parent*, starting at some origin table (usually the fact table) and
//! ending at a target table. Two distinct edge sequences reaching the same
//! table are distinct semantic interpretations — this is exactly the
//! paper's *join path ambiguity* ("Columbus" as store city vs. buyer city
//! vs. seller city), and implicitly provides the table aliasing that
//! Algorithm 1 requires.

use std::collections::HashMap;

use kdap_warehouse::{DimId, EdgeId, Schema, TableId, Warehouse};

/// An ordered chain of FK edges from an origin table out to a target.
///
/// The empty path refers to the origin table itself (hit groups on the
/// fact table select fact points directly — §4.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinPath {
    edges: Vec<EdgeId>,
}

impl JoinPath {
    /// The empty path (target = origin).
    pub fn empty() -> Self {
        JoinPath { edges: Vec::new() }
    }

    /// Builds a path from edges, validating the chain against `schema`:
    /// each edge's child table must be the previous edge's parent table.
    pub fn new(schema: &Schema, origin: TableId, edges: Vec<EdgeId>) -> Option<Self> {
        let mut at = origin;
        for &e in &edges {
            let edge = schema.edge(e);
            if edge.child.table != at {
                return None;
            }
            at = edge.parent.table;
        }
        Some(JoinPath { edges })
    }

    /// The edges of the path.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Path length in edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for the empty path.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The table the path ends at, given its origin.
    pub fn target_table(&self, schema: &Schema, origin: TableId) -> TableId {
        self.edges
            .last()
            .map(|&e| schema.edge(e).parent.table)
            .unwrap_or(origin)
    }

    /// All tables visited, origin first.
    pub fn tables(&self, schema: &Schema, origin: TableId) -> Vec<TableId> {
        let mut out = vec![origin];
        for &e in &self.edges {
            out.push(schema.edge(e).parent.table);
        }
        out
    }

    /// The dimension this path enters: the first edge dimension tag
    /// walking outward from the origin.
    pub fn dimension(&self, schema: &Schema) -> Option<DimId> {
        self.edges.iter().find_map(|&e| schema.edge(e).dimension)
    }

    /// Concatenates `self` with a continuation path starting at this
    /// path's target.
    pub fn extend(&self, tail: &JoinPath) -> JoinPath {
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&tail.edges);
        JoinPath { edges }
    }

    /// Human-readable rendering, e.g.
    /// `TRANS →(Buyer) ACCOUNT → CUSTOMER`.
    pub fn display(&self, wh: &Warehouse, origin: TableId) -> String {
        let schema = wh.schema();
        let mut s = wh.table(origin).name().to_string();
        for &e in &self.edges {
            let edge = schema.edge(e);
            match &edge.role {
                Some(r) => s.push_str(&format!(" →({r}) ")),
                None => s.push_str(" → "),
            }
            s.push_str(wh.table(edge.parent.table).name());
        }
        s
    }
}

/// Default bound on path length; real snowflake schemata are shallow and
/// this guards against pathological schema graphs.
pub const MAX_PATH_LEN: usize = 8;

/// Enumerates every simple join path from `origin` to `target`, walking
/// child → parent edges, up to `max_len` edges.
///
/// Distinct edges between the same tables (role-tagged self-join edges
/// like Buyer/Seller) produce distinct paths.
pub fn paths_between(
    schema: &Schema,
    origin: TableId,
    target: TableId,
    max_len: usize,
) -> Vec<JoinPath> {
    let mut out = Vec::new();
    if origin == target {
        out.push(JoinPath::empty());
    }
    let mut stack: Vec<EdgeId> = Vec::new();
    let mut visited: Vec<TableId> = vec![origin];
    dfs(
        schema,
        origin,
        target,
        max_len,
        &mut stack,
        &mut visited,
        &mut out,
    );
    out.sort();
    out
}

fn dfs(
    schema: &Schema,
    at: TableId,
    target: TableId,
    max_len: usize,
    stack: &mut Vec<EdgeId>,
    visited: &mut Vec<TableId>,
    out: &mut Vec<JoinPath>,
) {
    if stack.len() >= max_len {
        return;
    }
    for &eid in schema.edges_from_child(at) {
        let edge = schema.edge(eid);
        let next = edge.parent.table;
        // Simple paths only: a table appears at most once per path.
        if visited.contains(&next) {
            continue;
        }
        stack.push(eid);
        if next == target {
            out.push(JoinPath {
                edges: stack.clone(),
            });
        }
        visited.push(next);
        dfs(schema, next, target, max_len, stack, visited, out);
        visited.pop();
        stack.pop();
    }
}

/// Enumerates all join paths from the fact table to every reachable table.
///
/// This is the index the candidate-generation phase (Algorithm 1, line 6)
/// probes: "for each hit group, find all the join paths connecting to the
/// fact table".
pub fn fact_paths_by_table(schema: &Schema, max_len: usize) -> HashMap<TableId, Vec<JoinPath>> {
    let fact = schema.fact_table();
    let mut out: HashMap<TableId, Vec<JoinPath>> = HashMap::new();
    out.entry(fact).or_default().push(JoinPath::empty());
    let mut stack = Vec::new();
    let mut visited = vec![fact];
    collect_all(schema, fact, max_len, &mut stack, &mut visited, &mut out);
    for paths in out.values_mut() {
        paths.sort();
    }
    out
}

fn collect_all(
    schema: &Schema,
    at: TableId,
    max_len: usize,
    stack: &mut Vec<EdgeId>,
    visited: &mut Vec<TableId>,
    out: &mut HashMap<TableId, Vec<JoinPath>>,
) {
    if stack.len() >= max_len {
        return;
    }
    for &eid in schema.edges_from_child(at) {
        let edge = schema.edge(eid);
        let next = edge.parent.table;
        if visited.contains(&next) {
            continue;
        }
        stack.push(eid);
        out.entry(next).or_default().push(JoinPath {
            edges: stack.clone(),
        });
        visited.push(next);
        collect_all(schema, next, max_len, stack, visited, out);
        visited.pop();
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdap_warehouse::{ValueType, WarehouseBuilder};

    /// A miniature EBiz-style schema:
    /// ITEM(fact) → TRANS → STORE → LOC
    ///                  ↘(Buyer) ACCT → CUST → LOC
    ///                  ↘(Seller) ACCT
    /// ITEM → PROD
    fn ebiz_mini() -> Warehouse {
        let mut b = WarehouseBuilder::new();
        b.skip_integrity_check();
        b.table(
            "ITEM",
            &[
                ("Id", ValueType::Int, false),
                ("TKey", ValueType::Int, false),
                ("PKey", ValueType::Int, false),
            ],
        )
        .unwrap();
        b.table(
            "TRANS",
            &[
                ("TKey", ValueType::Int, false),
                ("SKey", ValueType::Int, false),
                ("BuyerKey", ValueType::Int, false),
                ("SellerKey", ValueType::Int, false),
            ],
        )
        .unwrap();
        b.table(
            "STORE",
            &[
                ("SKey", ValueType::Int, false),
                ("LKey", ValueType::Int, false),
            ],
        )
        .unwrap();
        b.table(
            "ACCT",
            &[
                ("AKey", ValueType::Int, false),
                ("CKey", ValueType::Int, false),
            ],
        )
        .unwrap();
        b.table(
            "CUST",
            &[
                ("CKey", ValueType::Int, false),
                ("LKey", ValueType::Int, false),
            ],
        )
        .unwrap();
        b.table(
            "LOC",
            &[
                ("LKey", ValueType::Int, false),
                ("City", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.table(
            "PROD",
            &[
                ("PKey", ValueType::Int, false),
                ("Name", ValueType::Str, true),
            ],
        )
        .unwrap();
        b.edge("ITEM.TKey", "TRANS.TKey", None, None).unwrap();
        b.edge("ITEM.PKey", "PROD.PKey", None, Some("Product"))
            .unwrap();
        b.edge("TRANS.SKey", "STORE.SKey", None, Some("Store"))
            .unwrap();
        b.edge(
            "TRANS.BuyerKey",
            "ACCT.AKey",
            Some("Buyer"),
            Some("Customer"),
        )
        .unwrap();
        b.edge(
            "TRANS.SellerKey",
            "ACCT.AKey",
            Some("Seller"),
            Some("Customer"),
        )
        .unwrap();
        b.edge("STORE.LKey", "LOC.LKey", None, None).unwrap();
        b.edge("ACCT.CKey", "CUST.CKey", None, None).unwrap();
        b.edge("CUST.LKey", "LOC.LKey", None, None).unwrap();
        b.dimension("Product", &["PROD"], vec![], vec![]).unwrap();
        b.dimension("Store", &["STORE", "LOC"], vec![], vec![])
            .unwrap();
        b.dimension("Customer", &["ACCT", "CUST", "LOC"], vec![], vec![])
            .unwrap();
        b.fact("ITEM").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn three_paths_reach_the_shared_location_table() {
        let wh = ebiz_mini();
        let fact = wh.schema().fact_table();
        let loc = wh.table_id("LOC").unwrap();
        let paths = paths_between(wh.schema(), fact, loc, MAX_PATH_LEN);
        // Store city, buyer city, seller city.
        assert_eq!(paths.len(), 3);
        let rendered: Vec<String> = paths.iter().map(|p| p.display(&wh, fact)).collect();
        assert!(rendered.iter().any(|s| s.contains("STORE")));
        assert!(rendered.iter().any(|s| s.contains("(Buyer)")));
        assert!(rendered.iter().any(|s| s.contains("(Seller)")));
    }

    #[test]
    fn path_dimension_comes_from_first_tagged_edge() {
        let wh = ebiz_mini();
        let fact = wh.schema().fact_table();
        let loc = wh.table_id("LOC").unwrap();
        let paths = paths_between(wh.schema(), fact, loc, MAX_PATH_LEN);
        let store_dim = wh.schema().dimension_by_name("Store").unwrap().id;
        let cust_dim = wh.schema().dimension_by_name("Customer").unwrap().id;
        let dims: Vec<_> = paths.iter().map(|p| p.dimension(wh.schema())).collect();
        assert_eq!(dims.iter().filter(|d| **d == Some(cust_dim)).count(), 2);
        assert_eq!(dims.iter().filter(|d| **d == Some(store_dim)).count(), 1);
    }

    #[test]
    fn fact_paths_cover_all_reachable_tables() {
        let wh = ebiz_mini();
        let by_table = fact_paths_by_table(wh.schema(), MAX_PATH_LEN);
        assert_eq!(by_table.len(), 7, "all tables reachable");
        let fact = wh.schema().fact_table();
        assert_eq!(by_table[&fact], vec![JoinPath::empty()]);
        let acct = wh.table_id("ACCT").unwrap();
        assert_eq!(by_table[&acct].len(), 2, "buyer and seller role paths");
    }

    #[test]
    fn target_and_tables() {
        let wh = ebiz_mini();
        let fact = wh.schema().fact_table();
        let prod = wh.table_id("PROD").unwrap();
        let p = &paths_between(wh.schema(), fact, prod, MAX_PATH_LEN)[0];
        assert_eq!(p.target_table(wh.schema(), fact), prod);
        assert_eq!(p.tables(wh.schema(), fact), vec![fact, prod]);
        assert_eq!(JoinPath::empty().target_table(wh.schema(), fact), fact);
    }

    #[test]
    fn new_validates_chain() {
        let wh = ebiz_mini();
        let fact = wh.schema().fact_table();
        let e_item_trans = wh.schema().edges()[0].id;
        let e_store_loc = wh.schema().edges()[5].id;
        assert!(JoinPath::new(wh.schema(), fact, vec![e_item_trans]).is_some());
        // STORE.LKey edge cannot follow directly from the fact table.
        assert!(JoinPath::new(wh.schema(), fact, vec![e_store_loc]).is_none());
    }

    #[test]
    fn extend_concatenates() {
        let wh = ebiz_mini();
        let schema = wh.schema();
        let fact = schema.fact_table();
        let trans = wh.table_id("TRANS").unwrap();
        let store = wh.table_id("STORE").unwrap();
        let a = paths_between(schema, fact, trans, 4)[0].clone();
        let b = paths_between(schema, trans, store, 4)[0].clone();
        let ab = a.extend(&b);
        assert_eq!(ab.target_table(schema, fact), store);
        assert_eq!(ab.len(), 2);
    }

    #[test]
    fn max_len_bounds_search() {
        let wh = ebiz_mini();
        let fact = wh.schema().fact_table();
        let loc = wh.table_id("LOC").unwrap();
        let paths = paths_between(wh.schema(), fact, loc, 2);
        // LOC is 3 edges away on every route.
        assert!(paths.is_empty());
    }
}
