//! The EBiz e-commerce warehouse — the paper's running example (Figure 2).
//!
//! Distinctive schema features, all exercised here:
//! * the **Location** table is shared by the Store and Customer
//!   dimensions, and the Customer dimension joins the fact through
//!   **Account** via both `BuyerKey` and `SellerKey` — three distinct join
//!   paths from `LOCATION` to the fact (join-path ambiguity);
//! * the Product dimension carries **two hierarchies**: Product Line →
//!   Product Group and the UNSPSC Family → Class taxonomy;
//! * the Time dimension spans **two tables** (`QUARTER` holding Year →
//!   Quarter, `DATETBL` holding Month → Week → Date) plus a `HOLIDAY`
//!   outrigger with "Columbus Day" (attribute-instance ambiguity against
//!   Columbus the city);
//! * the fact table `TRANSITEM` has a searchable `Comment` attribute, so
//!   hit groups can select fact points directly (§4.2).

use kdap_warehouse::{AttrKind, Value, ValueType, Warehouse, WarehouseBuilder, WarehouseError};

use crate::rng::Sampler;
use crate::vocab;

/// EBiz generation scale.
#[derive(Debug, Clone, Copy)]
pub struct EbizScale {
    /// Customer (and account) count.
    pub customers: usize,
    /// Store count (placed round-robin over the locations).
    pub stores: usize,
    /// Product count.
    pub products: usize,
    /// Transaction count; each yields 1..=max items.
    pub transactions: usize,
    /// Upper bound on TRANSITEM rows per transaction.
    pub max_items_per_transaction: usize,
}

impl EbizScale {
    /// Demo scale: tens of thousands of fact rows.
    pub fn full() -> Self {
        EbizScale {
            customers: 2000,
            stores: 60,
            products: 500,
            transactions: 20_000,
            max_items_per_transaction: 4,
        }
    }

    /// Fast test scale.
    pub fn small() -> Self {
        EbizScale {
            customers: 120,
            stores: 12,
            products: 80,
            transactions: 800,
            max_items_per_transaction: 3,
        }
    }

    /// Multiplies the scale by `factor` (clamped to 1..=200):
    /// transactions grow linearly, dimensions by `√factor` (see
    /// [`crate::Scale::scaled`]).
    pub fn scaled(self, factor: usize) -> Self {
        let f = factor.clamp(1, 200);
        let d = f.isqrt();
        EbizScale {
            customers: self.customers * d,
            stores: self.stores * d,
            products: self.products * d,
            transactions: self.transactions * f,
            max_items_per_transaction: self.max_items_per_transaction,
        }
    }
}

/// Product lines → product groups for the electronics catalog.
const PRODUCT_LINES: &[(&str, &[&str])] = &[
    (
        "Home Electronics",
        &[
            "Televisions",
            "Flat Panel(LCD)",
            "Plasma Displays",
            "VCR",
            "Home Audio",
            "DVD Players",
        ],
    ),
    (
        "Office Electronics",
        &[
            "LCD Projectors",
            "Monitors",
            "Printers",
            "Scanners",
            "Shredders",
        ],
    ),
    (
        "Computers",
        &[
            "Laptops",
            "Desktops",
            "Tablets",
            "Servers",
            "Accessories Kits",
        ],
    ),
    (
        "Software",
        &["Operating Systems", "Office Suites", "Games", "Antivirus"],
    ),
];

/// UNSPSC family → classes.
const UNSPSC_FAMILIES: &[(&str, &[&str])] = &[
    (
        "Consumer Electronics",
        &["Video Equipment", "Audio Equipment", "Display Devices"],
    ),
    (
        "Information Technology",
        &[
            "Computer Equipment",
            "Computer Accessories",
            "Software Products",
        ],
    ),
    (
        "Office Equipment",
        &["Imaging Devices", "Paper Handling Machines"],
    ),
];

const BRANDS: &[&str] = &[
    "Vistron",
    "Lumax",
    "Pixelar",
    "SoundCore",
    "Clarity",
    "NovaTech",
    "Orbit",
    "Zenlight",
    "Calypso",
    "Meridian",
];

const PRODUCT_KINDS: &[&str] = &[
    "LCD TV",
    "Plasma TV",
    "LCD Projector",
    "DLP Projector",
    "Flat Panel Monitor",
    "CRT Monitor",
    "Laser Printer",
    "Inkjet Printer",
    "DVD Player",
    "VCR Deck",
    "Laptop",
    "Desktop",
    "Tablet",
    "Home Theater System",
    "Soundbar",
    "Document Scanner",
];

const COMMENTS: &[&str] = &[
    "gift wrap requested",
    "expedited shipping",
    "holiday sale purchase",
    "price match applied",
    "store pickup",
    "extended warranty added",
    "employee discount",
    "clearance item",
];

const ACCOUNT_TYPES: &[&str] = &["Personal", "Business", "Premium"];

/// Builds the EBiz warehouse deterministically from `seed`.
pub fn build_ebiz(scale: EbizScale, seed: u64) -> Result<Warehouse, WarehouseError> {
    let mut s = Sampler::new(seed);
    let mut b = WarehouseBuilder::new();

    // ---- Location (shared by Store and Customer) ----
    b.table(
        "LOCATION",
        &[
            ("LKey", ValueType::Int, false),
            ("City", ValueType::Str, true),
            ("State", ValueType::Str, true),
            ("Country", ValueType::Str, true),
        ],
    )?;
    let mut lkey = 0i64;
    for (country, states) in vocab::GEOGRAPHY {
        for state in *states {
            let cities = vocab::CITIES
                .iter()
                .find(|(st, _)| st == state)
                .map(|(_, cs)| *cs)
                .unwrap_or(&[]);
            for city in cities {
                lkey += 1;
                b.row(
                    "LOCATION",
                    vec![
                        lkey.into(),
                        (*city).into(),
                        (*state).into(),
                        (*country).into(),
                    ],
                )?;
            }
        }
    }
    let n_locations = lkey;

    // ---- Store ----
    b.table(
        "STORE",
        &[
            ("SKey", ValueType::Int, false),
            ("StoreName", ValueType::Str, true),
            ("LKey", ValueType::Int, false),
        ],
    )?;
    for sk in 1..=scale.stores as i64 {
        let kind = *s.pick(&["Outlet", "Superstore", "Express", "Gallery"]);
        // Round-robin placement guarantees the walkthrough cities
        // (Columbus, Seattle, Portland, San Jose...) all host a store at
        // full scale.
        let lkey = (sk - 1) % n_locations + 1;
        b.row(
            "STORE",
            vec![sk.into(), format!("EBiz {kind} {sk}").into(), lkey.into()],
        )?;
    }

    // ---- Customer / Account ----
    b.table(
        "CUSTOMER",
        &[
            ("CKey", ValueType::Int, false),
            ("FirstName", ValueType::Str, true),
            ("LastName", ValueType::Str, true),
            ("Age", ValueType::Float, false),
            ("Income", ValueType::Float, false),
            ("LKey", ValueType::Int, false),
        ],
    )?;
    for ck in 1..=scale.customers as i64 {
        b.row(
            "CUSTOMER",
            vec![
                ck.into(),
                (*s.pick(vocab::FIRST_NAMES)).into(),
                (*s.pick(vocab::LAST_NAMES)).into(),
                (s.int(18, 80) as f64).into(),
                ((s.skewed_index(16) as f64 + 1.0) * 10_000.0).into(),
                s.int(1, n_locations).into(),
            ],
        )?;
    }
    b.table(
        "ACCOUNT",
        &[
            ("AKey", ValueType::Int, false),
            ("AccountType", ValueType::Str, true),
            ("CKey", ValueType::Int, false),
        ],
    )?;
    // One account per customer (same key space) keeps Buyer/Seller joins
    // simple while preserving the two-role ambiguity.
    for ak in 1..=scale.customers as i64 {
        b.row(
            "ACCOUNT",
            vec![ak.into(), (*s.pick(ACCOUNT_TYPES)).into(), ak.into()],
        )?;
    }

    // ---- Product: two hierarchies ----
    b.table(
        "PLINE",
        &[
            ("LineKey", ValueType::Int, false),
            ("LineName", ValueType::Str, true),
        ],
    )?;
    b.table(
        "PGROUP",
        &[
            ("GKey", ValueType::Int, false),
            ("GroupName", ValueType::Str, true),
            ("LineKey", ValueType::Int, false),
        ],
    )?;
    let mut groups: Vec<i64> = Vec::new();
    let mut gkey = 0i64;
    for (li, (line, gs)) in PRODUCT_LINES.iter().enumerate() {
        b.row("PLINE", vec![(li as i64 + 1).into(), (*line).into()])?;
        for g in *gs {
            gkey += 1;
            b.row(
                "PGROUP",
                vec![gkey.into(), (*g).into(), (li as i64 + 1).into()],
            )?;
            groups.push(gkey);
        }
    }
    b.table(
        "UNSPSC",
        &[
            ("UKey", ValueType::Int, false),
            ("ClassTitle", ValueType::Str, true),
            ("FamilyTitle", ValueType::Str, true),
        ],
    )?;
    let mut ukey = 0i64;
    let mut unspsc_keys = Vec::new();
    for (family, classes) in UNSPSC_FAMILIES {
        for class in *classes {
            ukey += 1;
            b.row(
                "UNSPSC",
                vec![ukey.into(), (*class).into(), (*family).into()],
            )?;
            unspsc_keys.push(ukey);
        }
    }
    b.table(
        "PRODUCT",
        &[
            ("PKey", ValueType::Int, false),
            ("ProductName", ValueType::Str, true),
            ("Description", ValueType::Str, true),
            ("ListPrice", ValueType::Float, false),
            ("GKey", ValueType::Int, false),
            ("UKey", ValueType::Int, false),
        ],
    )?;
    for pk in 1..=scale.products as i64 {
        let brand = *s.pick(BRANDS);
        let kind = *s.pick(PRODUCT_KINDS);
        let size = s.int(19, 65);
        let name = format!("{brand} {size}in {kind}");
        b.row(
            "PRODUCT",
            vec![
                pk.into(),
                name.into(),
                (*s.pick(vocab::DESCRIPTION_SNIPPETS)).into(),
                ((s.float(80.0, 4200.0) * 100.0).round() / 100.0).into(),
                (*s.pick(&groups)).into(),
                (*s.pick(&unspsc_keys)).into(),
            ],
        )?;
    }

    // ---- Time ----
    b.table(
        "QUARTER",
        &[
            ("QKey", ValueType::Int, false),
            ("Year", ValueType::Str, true),
            ("Quarter", ValueType::Str, true),
        ],
    )?;
    let years = [2005i64, 2006];
    let mut qkey = 0i64;
    for year in years {
        for q in 1..=4 {
            qkey += 1;
            b.row(
                "QUARTER",
                vec![
                    qkey.into(),
                    year.to_string().into(),
                    format!("{year} Q{q}").into(),
                ],
            )?;
        }
    }
    b.table(
        "HOLIDAY",
        &[
            ("HKey", ValueType::Int, false),
            ("Event", ValueType::Str, true),
        ],
    )?;
    for (i, h) in vocab::HOLIDAYS.iter().enumerate() {
        b.row("HOLIDAY", vec![(i as i64 + 1).into(), (*h).into()])?;
    }
    b.table(
        "DATETBL",
        &[
            ("DKey", ValueType::Int, false),
            ("Month", ValueType::Str, true),
            ("Week", ValueType::Str, true),
            ("DateLabel", ValueType::Str, true),
            ("QKey", ValueType::Int, false),
            ("HKey", ValueType::Int, false),
        ],
    )?;
    let mut dkey = 0i64;
    let n_holidays = vocab::HOLIDAYS.len() as i64;
    for (yi, year) in years.iter().enumerate() {
        for (mi, month) in vocab::MONTHS.iter().enumerate() {
            let q = yi as i64 * 4 + (mi as i64 / 3) + 1;
            for day in 1..=28i64 {
                dkey += 1;
                let week = format!("{year} W{:02}", (mi as i64 * 4) + (day - 1) / 7 + 1);
                // Sprinkle holidays deterministically; "Columbus Day" lands
                // in October.
                let holiday: Value = if *month == "October" && day == 9 {
                    1i64.into()
                } else if day == 1 && mi == 0 {
                    2i64.into()
                } else if dkey % 97 == 0 {
                    (dkey % n_holidays + 1).into()
                } else {
                    Value::Null
                };
                b.row(
                    "DATETBL",
                    vec![
                        dkey.into(),
                        (*month).into(),
                        week.into(),
                        format!("{year}-{:02}-{day:02}", mi + 1).into(),
                        q.into(),
                        holiday,
                    ],
                )?;
            }
        }
    }
    let n_dates = dkey;

    // ---- Facts ----
    b.table(
        "TRANS",
        &[
            ("TKey", ValueType::Int, false),
            ("SKey", ValueType::Int, false),
            ("BuyerKey", ValueType::Int, false),
            ("SellerKey", ValueType::Int, false),
            ("DKey", ValueType::Int, false),
        ],
    )?;
    b.table(
        "TRANSITEM",
        &[
            ("IKey", ValueType::Int, false),
            ("TKey", ValueType::Int, false),
            ("PKey", ValueType::Int, false),
            ("Qty", ValueType::Int, false),
            ("UnitPrice", ValueType::Float, false),
            ("Comment", ValueType::Str, true),
        ],
    )?;
    let mut ikey = 0i64;
    for tk in 1..=scale.transactions as i64 {
        let buyer = s.skewed_index(scale.customers) as i64 + 1;
        let mut seller = s.skewed_index(scale.customers) as i64 + 1;
        if seller == buyer {
            seller = seller % scale.customers as i64 + 1;
        }
        b.row(
            "TRANS",
            vec![
                tk.into(),
                s.int(1, scale.stores as i64).into(),
                buyer.into(),
                seller.into(),
                s.int(1, n_dates).into(),
            ],
        )?;
        let n_items = s.int(1, scale.max_items_per_transaction as i64);
        for _ in 0..n_items {
            ikey += 1;
            let comment: Value = if s.chance(0.2) {
                (*s.pick(COMMENTS)).into()
            } else {
                Value::Null
            };
            b.row(
                "TRANSITEM",
                vec![
                    ikey.into(),
                    tk.into(),
                    (s.skewed_index(scale.products) as i64 + 1).into(),
                    s.int(1, 3).into(),
                    ((s.float(50.0, 4000.0) * 100.0).round() / 100.0).into(),
                    comment,
                ],
            )?;
        }
    }

    // ---- Edges ----
    b.edge("TRANSITEM.TKey", "TRANS.TKey", None, None)?;
    b.edge("TRANSITEM.PKey", "PRODUCT.PKey", None, Some("Product"))?;
    b.edge("TRANS.SKey", "STORE.SKey", None, Some("Store"))?;
    b.edge(
        "TRANS.BuyerKey",
        "ACCOUNT.AKey",
        Some("Buyer"),
        Some("Customer"),
    )?;
    b.edge(
        "TRANS.SellerKey",
        "ACCOUNT.AKey",
        Some("Seller"),
        Some("Customer"),
    )?;
    b.edge("TRANS.DKey", "DATETBL.DKey", None, Some("Time"))?;
    b.edge("STORE.LKey", "LOCATION.LKey", None, None)?;
    b.edge("ACCOUNT.CKey", "CUSTOMER.CKey", None, None)?;
    b.edge("CUSTOMER.LKey", "LOCATION.LKey", None, None)?;
    b.edge("PRODUCT.GKey", "PGROUP.GKey", None, None)?;
    b.edge("PGROUP.LineKey", "PLINE.LineKey", None, None)?;
    b.edge("PRODUCT.UKey", "UNSPSC.UKey", None, None)?;
    b.edge("DATETBL.QKey", "QUARTER.QKey", None, None)?;
    b.edge("DATETBL.HKey", "HOLIDAY.HKey", None, None)?;

    // ---- Dimensions ----
    b.dimension(
        "Product",
        &["PRODUCT", "PGROUP", "PLINE", "UNSPSC"],
        vec![
            (
                "ProductLine",
                vec!["PLINE.LineName", "PGROUP.GroupName", "PRODUCT.ProductName"],
            ),
            ("UNSPSC", vec!["UNSPSC.FamilyTitle", "UNSPSC.ClassTitle"]),
        ],
        vec![
            ("PGROUP.GroupName", AttrKind::Categorical),
            ("PLINE.LineName", AttrKind::Categorical),
            ("UNSPSC.FamilyTitle", AttrKind::Categorical),
            ("UNSPSC.ClassTitle", AttrKind::Categorical),
            ("PRODUCT.ListPrice", AttrKind::Numerical),
        ],
    )?;
    b.dimension(
        "Store",
        &["STORE", "LOCATION"],
        vec![(
            "StoreGeo",
            vec!["LOCATION.Country", "LOCATION.State", "LOCATION.City"],
        )],
        vec![
            ("LOCATION.City", AttrKind::Categorical),
            ("LOCATION.State", AttrKind::Categorical),
            ("LOCATION.Country", AttrKind::Categorical),
        ],
    )?;
    b.dimension(
        "Customer",
        &["ACCOUNT", "CUSTOMER", "LOCATION"],
        vec![(
            "CustGeo",
            vec!["LOCATION.Country", "LOCATION.State", "LOCATION.City"],
        )],
        vec![
            ("ACCOUNT.AccountType", AttrKind::Categorical),
            ("CUSTOMER.Age", AttrKind::Numerical),
            ("CUSTOMER.Income", AttrKind::Numerical),
            ("LOCATION.City", AttrKind::Categorical),
        ],
    )?;
    b.dimension(
        "Time",
        &["DATETBL", "QUARTER", "HOLIDAY"],
        vec![(
            "Calendar",
            vec![
                "QUARTER.Year",
                "QUARTER.Quarter",
                "DATETBL.Month",
                "DATETBL.Week",
            ],
        )],
        vec![
            ("DATETBL.Month", AttrKind::Categorical),
            ("QUARTER.Year", AttrKind::Categorical),
            ("HOLIDAY.Event", AttrKind::Categorical),
        ],
    )?;
    b.fact("TRANSITEM")?;
    b.measure_product("SalesRevenue", "TRANSITEM.UnitPrice", "TRANSITEM.Qty")?;
    b.measure_column("UnitsSold", "TRANSITEM.Qty")?;
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let wh = build_ebiz(EbizScale::small(), 42).unwrap();
        // 11 tables: LOCATION, STORE, CUSTOMER, ACCOUNT, PLINE, PGROUP,
        // UNSPSC, PRODUCT, QUARTER, HOLIDAY, DATETBL + TRANS + TRANSITEM
        assert_eq!(wh.tables().len(), 13);
        assert_eq!(wh.schema().dimensions().len(), 4);
        let product = wh.schema().dimension_by_name("Product").unwrap();
        assert_eq!(product.hierarchies.len(), 2, "two product hierarchies");
    }

    #[test]
    fn location_reached_by_three_paths() {
        let wh = build_ebiz(EbizScale::small(), 42).unwrap();
        let loc = wh.table_id("LOCATION").unwrap();
        let fact = wh.schema().fact_table();
        let paths = kdap_query::paths_between(wh.schema(), fact, loc, 8);
        assert_eq!(paths.len(), 3, "store, buyer, seller");
    }

    #[test]
    fn columbus_ambiguity_exists() {
        let wh = build_ebiz(EbizScale::small(), 42).unwrap();
        let city = wh.col_ref("LOCATION", "City").unwrap();
        assert!(wh
            .column(city)
            .dict()
            .unwrap()
            .code_of("Columbus")
            .is_some());
        let event = wh.col_ref("HOLIDAY", "Event").unwrap();
        assert!(wh
            .column(event)
            .dict()
            .unwrap()
            .code_of("Columbus Day")
            .is_some());
    }

    #[test]
    fn fact_table_has_searchable_attribute() {
        let wh = build_ebiz(EbizScale::small(), 42).unwrap();
        let fact = wh.schema().fact_table();
        assert!(wh.table(fact).n_searchable() >= 1);
    }

    #[test]
    fn two_measures_defined() {
        let wh = build_ebiz(EbizScale::small(), 42).unwrap();
        assert!(wh.schema().measure_by_name("SalesRevenue").is_some());
        assert!(wh.schema().measure_by_name("UnitsSold").is_some());
    }
}
