//! Deterministic random sampling helpers.
//!
//! Every generator takes an explicit seed, so warehouses, workloads, and
//! therefore experiment outputs are bit-for-bit reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG wrapper with the sampling idioms the generators use.
pub struct Sampler {
    rng: StdRng,
}

impl Sampler {
    /// A sampler seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Sampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn int(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn float(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform pick from a slice. Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.rng.gen_range(0..items.len())]
    }

    /// Index pick, for parallel arrays.
    pub fn index(&mut self, len: usize) -> usize {
        self.rng.gen_range(0..len)
    }

    /// A skewed (Zipf-ish, s≈1) pick favouring early indices — keeps the
    /// generated measure distributions non-uniform the way sales data is.
    pub fn skewed_index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        let u: f64 = self.rng.gen_range(0.0..1.0);
        // Inverse-CDF of a truncated power law.
        let idx = ((len as f64).powf(u) - 1.0) as usize;
        idx.min(len - 1)
    }

    /// Direct access for cases the helpers don't cover.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Sampler::new(7);
        let mut b = Sampler::new(7);
        for _ in 0..100 {
            assert_eq!(a.int(0, 1000), b.int(0, 1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Sampler::new(1);
        let mut b = Sampler::new(2);
        let same = (0..50).filter(|_| a.int(0, 1000) == b.int(0, 1000)).count();
        assert!(same < 10);
    }

    #[test]
    fn ranges_respected() {
        let mut s = Sampler::new(3);
        for _ in 0..1000 {
            let v = s.int(-5, 5);
            assert!((-5..=5).contains(&v));
            let f = s.float(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
            let i = s.skewed_index(10);
            assert!(i < 10);
        }
    }

    #[test]
    fn skewed_index_favours_low_values() {
        let mut s = Sampler::new(11);
        let draws: Vec<usize> = (0..10_000).map(|_| s.skewed_index(100)).collect();
        let low = draws.iter().filter(|&&i| i < 10).count();
        let high = draws.iter().filter(|&&i| i >= 90).count();
        assert!(low > high * 3, "low={low} high={high}");
    }
}
