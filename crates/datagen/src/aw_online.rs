//! The AW_ONLINE warehouse: the Internet-sales half of the AdventureWorks
//! data warehouse the paper evaluates on (§6.1).
//!
//! Shape matches the paper's description: **5 dimensions, 10 tables,
//! three hierarchical dimensions**, one fact table with 60k+ records at
//! [`Scale::full`], and more than 20 full-text searchable attribute
//! domains:
//!
//! * Customer — DimCustomer → DimGeography → DimStateProvince, with the
//!   Country → StateProvince → City hierarchy and YearlyIncome;
//! * Product — DimProduct → DimProductSubcategory → DimProductCategory,
//!   with the Category → Subcategory → Product hierarchy, DealerPrice and
//!   ListPrice;
//! * Date — DimDate with the Year → Quarter → Month hierarchy;
//! * Promotion, Currency — flat.

use kdap_warehouse::{AttrKind, Value, ValueType, Warehouse, WarehouseBuilder, WarehouseError};

use crate::common::{
    add_currency_table, add_date_table, add_geography_tables, add_product_tables,
    add_promotion_table, Scale,
};
use crate::rng::Sampler;
use crate::vocab;

/// Builds AW_ONLINE at the given scale, deterministically from `seed`.
pub fn build_aw_online(scale: Scale, seed: u64) -> Result<Warehouse, WarehouseError> {
    let mut s = Sampler::new(seed);
    let mut b = WarehouseBuilder::new();

    let n_geo = add_geography_tables(&mut b)?;
    let n_products = add_product_tables(&mut b, &mut s, scale.products)?;
    let years = [2001i64, 2002, 2003];
    let n_dates = add_date_table(&mut b, &years)?;
    let n_promos = add_promotion_table(&mut b, &mut s)?;
    let n_currencies = add_currency_table(&mut b)?;

    b.table(
        "DimCustomer",
        &[
            ("CustomerKey", ValueType::Int, false),
            ("FirstName", ValueType::Str, true),
            ("LastName", ValueType::Str, true),
            ("EmailAddress", ValueType::Str, true),
            ("AddressLine1", ValueType::Str, true),
            ("Occupation", ValueType::Str, true),
            ("Education", ValueType::Str, true),
            ("YearlyIncome", ValueType::Float, false),
            ("GeographyKey", ValueType::Int, false),
        ],
    )?;
    for ck in 1..=scale.customers as i64 {
        let first = *s.pick(vocab::FIRST_NAMES);
        let last = *s.pick(vocab::LAST_NAMES);
        let email = format!(
            "{}{}@adventure-works.com",
            first.to_ascii_lowercase(),
            ck % 100
        );
        let address = format!("{} {}", s.int(1, 9899), s.pick(vocab::STREETS));
        let occupation = *s.pick(vocab::OCCUPATIONS);
        let education = *s.pick(vocab::EDUCATION);
        // AdventureWorks-style income: multiples of 10k, skewed low.
        let income = (s.skewed_index(17) as f64 + 1.0) * 10_000.0;
        let geo = s.int(1, n_geo as i64);
        b.row(
            "DimCustomer",
            vec![
                ck.into(),
                first.into(),
                last.into(),
                email.into(),
                address.into(),
                occupation.into(),
                education.into(),
                income.into(),
                geo.into(),
            ],
        )?;
    }

    b.table(
        "FactInternetSales",
        &[
            ("SalesKey", ValueType::Int, false),
            ("CustomerKey", ValueType::Int, false),
            ("ProductKey", ValueType::Int, false),
            ("DateKey", ValueType::Int, false),
            ("PromotionKey", ValueType::Int, false),
            ("CurrencyKey", ValueType::Int, false),
            ("OrderQuantity", ValueType::Int, false),
            ("UnitPrice", ValueType::Float, false),
        ],
    )?;
    for fk in 1..=scale.facts as i64 {
        let customer = s.skewed_index(scale.customers) as i64 + 1;
        let product = s.skewed_index(n_products) as i64 + 1;
        let date = s.int(1, n_dates as i64);
        // Most sales run on "No Discount" (promotion key 1).
        let promotion = if s.chance(0.8) {
            1
        } else {
            s.int(2, n_promos as i64)
        };
        let currency = s.int(1, n_currencies as i64);
        let qty = 1 + s.skewed_index(4) as i64;
        let price = (s.float(3.0, 2400.0) * 100.0).round() / 100.0;
        b.row(
            "FactInternetSales",
            vec![
                fk.into(),
                customer.into(),
                product.into(),
                date.into(),
                promotion.into(),
                currency.into(),
                qty.into(),
                Value::Float(price),
            ],
        )?;
    }

    b.edge(
        "FactInternetSales.CustomerKey",
        "DimCustomer.CustomerKey",
        None,
        Some("Customer"),
    )?;
    b.edge(
        "DimCustomer.GeographyKey",
        "DimGeography.GeographyKey",
        None,
        None,
    )?;
    b.edge(
        "DimGeography.StateKey",
        "DimStateProvince.StateKey",
        None,
        None,
    )?;
    b.edge(
        "FactInternetSales.ProductKey",
        "DimProduct.ProductKey",
        None,
        Some("Product"),
    )?;
    b.edge(
        "DimProduct.SubcategoryKey",
        "DimProductSubcategory.SubcategoryKey",
        None,
        None,
    )?;
    b.edge(
        "DimProductSubcategory.CategoryKey",
        "DimProductCategory.CategoryKey",
        None,
        None,
    )?;
    b.edge(
        "FactInternetSales.DateKey",
        "DimDate.DateKey",
        None,
        Some("Date"),
    )?;
    b.edge(
        "FactInternetSales.PromotionKey",
        "DimPromotion.PromotionKey",
        None,
        Some("Promotion"),
    )?;
    b.edge(
        "FactInternetSales.CurrencyKey",
        "DimCurrency.CurrencyKey",
        None,
        Some("Currency"),
    )?;

    b.dimension(
        "Customer",
        &["DimCustomer", "DimGeography", "DimStateProvince"],
        vec![(
            "CustomerGeography",
            vec![
                "DimStateProvince.CountryRegionName",
                "DimStateProvince.StateProvinceName",
                "DimGeography.City",
            ],
        )],
        vec![
            ("DimCustomer.Occupation", AttrKind::Categorical),
            ("DimCustomer.Education", AttrKind::Categorical),
            ("DimCustomer.YearlyIncome", AttrKind::Numerical),
            ("DimGeography.City", AttrKind::Categorical),
            ("DimStateProvince.StateProvinceName", AttrKind::Categorical),
            ("DimStateProvince.CountryRegionName", AttrKind::Categorical),
        ],
    )?;
    b.dimension(
        "Product",
        &["DimProduct", "DimProductSubcategory", "DimProductCategory"],
        vec![(
            "ProductCategories",
            vec![
                "DimProductCategory.CategoryName",
                "DimProductSubcategory.ProductSubcategoryName",
                "DimProduct.EnglishProductName",
            ],
        )],
        vec![
            (
                "DimProductSubcategory.ProductSubcategoryName",
                AttrKind::Categorical,
            ),
            ("DimProductCategory.CategoryName", AttrKind::Categorical),
            ("DimProduct.ModelName", AttrKind::Categorical),
            ("DimProduct.Color", AttrKind::Categorical),
            ("DimProduct.DealerPrice", AttrKind::Numerical),
            ("DimProduct.ListPrice", AttrKind::Numerical),
        ],
    )?;
    b.dimension(
        "Date",
        &["DimDate"],
        vec![(
            "Calendar",
            vec![
                "DimDate.CalendarYear",
                "DimDate.CalendarQuarter",
                "DimDate.MonthName",
            ],
        )],
        vec![
            ("DimDate.MonthName", AttrKind::Categorical),
            ("DimDate.CalendarYear", AttrKind::Categorical),
        ],
    )?;
    b.dimension(
        "Promotion",
        &["DimPromotion"],
        vec![],
        vec![
            ("DimPromotion.PromotionName", AttrKind::Categorical),
            ("DimPromotion.PromotionType", AttrKind::Categorical),
        ],
    )?;
    b.dimension(
        "Currency",
        &["DimCurrency"],
        vec![],
        vec![("DimCurrency.CurrencyName", AttrKind::Categorical)],
    )?;
    b.fact("FactInternetSales")?;
    b.measure_product(
        "SalesRevenue",
        "FactInternetSales.UnitPrice",
        "FactInternetSales.OrderQuantity",
    )?;
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_description() {
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        assert_eq!(wh.tables().len(), 10, "10 tables");
        assert_eq!(wh.schema().dimensions().len(), 5, "5 dimensions");
        let hierarchical = wh
            .schema()
            .dimensions()
            .iter()
            .filter(|d| !d.hierarchies.is_empty())
            .count();
        assert_eq!(hierarchical, 3, "3 hierarchical dimensions");
        let searchable = wh.searchable_columns().count();
        assert!(searchable > 20, "got {searchable} searchable domains");
    }

    #[test]
    fn full_scale_exceeds_sixty_thousand_facts() {
        // Scale numbers only; actually building full scale is exercised by
        // the experiment binaries.
        assert!(Scale::full().facts > 60_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build_aw_online(Scale::small(), 7).unwrap();
        let b = build_aw_online(Scale::small(), 7).unwrap();
        assert_eq!(a.fact_rows(), b.fact_rows());
        let ta = a.table(a.table_id("DimCustomer").unwrap());
        let tb = b.table(b.table_id("DimCustomer").unwrap());
        for row in [0, 10, 100] {
            assert_eq!(ta.row(row), tb.row(row));
        }
    }

    #[test]
    fn referential_integrity_holds() {
        // finish() runs the FK check; reaching here means it passed. Spot
        // check a join anyway.
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        let fact = wh.table(wh.table_id("FactInternetSales").unwrap());
        assert_eq!(fact.nrows(), Scale::small().facts);
        let cust_col = fact.column_by_name("CustomerKey").unwrap();
        let max_key = (0..fact.nrows())
            .filter_map(|r| cust_col.get_int(r))
            .max()
            .unwrap();
        assert!(max_key <= Scale::small().customers as i64);
    }

    #[test]
    fn ambiguity_seeds_present_in_data() {
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        let addr = wh.col_ref("DimCustomer", "AddressLine1").unwrap();
        let dict = wh.column(addr).dict().unwrap();
        assert!(
            dict.iter().any(|(_, v)| v.contains("California Street")),
            "California street addresses seeded"
        );
        let state = wh.col_ref("DimStateProvince", "StateProvinceName").unwrap();
        assert!(wh
            .column(state)
            .dict()
            .unwrap()
            .code_of("California")
            .is_some());
    }

    #[test]
    fn measure_evaluates() {
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        let m = wh.schema().measure_by_name("SalesRevenue").unwrap().clone();
        let v = wh.eval_measure(&m, 0).unwrap();
        assert!(v > 0.0);
    }
}
