//! A Google-Trends-style query-log warehouse.
//!
//! The paper's related work (§2) notes that "Google Trends is the only
//! system that provides some rudimentary KDAP functionality … a
//! multi-faceted search interface over the query log, showing aggregated
//! search query volume for the typed keywords over time and location",
//! and argues general OLAP models need more: dynamic group-by selection
//! by interestingness. This generator produces that query log so the
//! `trends_demo` example can show KDAP subsuming the Trends experience —
//! the time and location facets appear as ordinary dimensions, plus
//! facets Google Trends never had.
//!
//! Seasonality is seeded so the interestingness machinery has signal:
//! each term carries a monthly profile ("sunscreen" peaks in summer,
//! "christmas gifts" in December, "world cup" in June/July).

use kdap_warehouse::{AttrKind, ValueType, Warehouse, WarehouseBuilder, WarehouseError};

use crate::rng::Sampler;
use crate::vocab;

/// Search terms with their category and a 12-month seasonality profile
/// (relative weights, January..December).
const TERMS: &[(&str, &str, [u32; 12])] = &[
    (
        "ipod nano",
        "Electronics",
        [8, 7, 6, 6, 6, 6, 6, 7, 8, 9, 12, 20],
    ),
    (
        "lcd tv",
        "Electronics",
        [9, 8, 7, 7, 7, 8, 8, 8, 9, 10, 14, 18],
    ),
    (
        "digital camera",
        "Electronics",
        [7, 6, 6, 7, 8, 10, 10, 9, 8, 8, 11, 16],
    ),
    (
        "laptop deals",
        "Electronics",
        [10, 8, 7, 7, 7, 8, 9, 14, 12, 9, 13, 15],
    ),
    (
        "sunscreen",
        "Health",
        [2, 2, 4, 7, 12, 18, 20, 16, 8, 3, 2, 2],
    ),
    (
        "flu shot",
        "Health",
        [8, 6, 4, 3, 2, 2, 2, 3, 10, 18, 16, 10],
    ),
    (
        "gym membership",
        "Health",
        [22, 14, 10, 8, 7, 6, 5, 5, 6, 6, 5, 6],
    ),
    (
        "world cup",
        "Sports",
        [3, 3, 4, 5, 8, 22, 24, 10, 5, 4, 4, 4],
    ),
    (
        "ski resort",
        "Sports",
        [18, 16, 10, 4, 2, 1, 1, 1, 2, 5, 12, 20],
    ),
    (
        "surfboard",
        "Sports",
        [4, 4, 6, 8, 12, 16, 18, 16, 10, 6, 4, 4],
    ),
    (
        "christmas gifts",
        "Shopping",
        [1, 1, 1, 1, 1, 1, 1, 1, 2, 4, 16, 40],
    ),
    (
        "halloween costume",
        "Shopping",
        [1, 1, 1, 1, 1, 1, 2, 4, 12, 38, 3, 1],
    ),
    (
        "tax software",
        "Finance",
        [14, 18, 24, 20, 4, 2, 2, 2, 2, 3, 3, 4],
    ),
    (
        "mortgage rates",
        "Finance",
        [10, 10, 11, 11, 10, 9, 9, 9, 9, 9, 8, 8],
    ),
    (
        "columbus day sale",
        "Shopping",
        [1, 1, 1, 1, 1, 1, 1, 2, 6, 30, 4, 1],
    ),
];

/// Scale of the generated query log.
#[derive(Debug, Clone, Copy)]
pub struct TrendsScale {
    /// Fact rows (aggregated log entries).
    pub entries: usize,
    /// Number of calendar years covered.
    pub years: u32,
}

impl TrendsScale {
    /// Demo scale.
    pub fn full() -> Self {
        TrendsScale {
            entries: 40_000,
            years: 2,
        }
    }

    /// Fast test scale.
    pub fn small() -> Self {
        TrendsScale {
            entries: 2_000,
            years: 1,
        }
    }

    /// Multiplies the fact-row count by `factor` (clamped to 1..=200).
    /// The calendar span is left alone: a busier query log over the same
    /// years, like the other generators' sub-linear dimension growth.
    pub fn scaled(self, factor: usize) -> Self {
        TrendsScale {
            entries: self.entries * factor.clamp(1, 200),
            years: self.years,
        }
    }
}

/// Builds the query-log warehouse deterministically from `seed`.
pub fn build_trends(scale: TrendsScale, seed: u64) -> Result<Warehouse, WarehouseError> {
    let mut s = Sampler::new(seed);
    let mut b = WarehouseBuilder::new();

    b.table(
        "SEARCHTERM",
        &[
            ("TermKey", ValueType::Int, false),
            ("Term", ValueType::Str, true),
            ("Category", ValueType::Str, true),
        ],
    )?;
    for (i, (term, category, _)) in TERMS.iter().enumerate() {
        b.row(
            "SEARCHTERM",
            vec![(i as i64 + 1).into(), (*term).into(), (*category).into()],
        )?;
    }

    b.table(
        "GEO",
        &[
            ("GeoKey", ValueType::Int, false),
            ("City", ValueType::Str, true),
            ("State", ValueType::Str, true),
            ("Country", ValueType::Str, true),
        ],
    )?;
    let mut geo_key = 0i64;
    for (country, states) in vocab::GEOGRAPHY {
        for state in *states {
            let cities = vocab::CITIES
                .iter()
                .find(|(st, _)| st == state)
                .map(|(_, cs)| *cs)
                .unwrap_or(&[]);
            for city in cities {
                geo_key += 1;
                b.row(
                    "GEO",
                    vec![
                        geo_key.into(),
                        (*city).into(),
                        (*state).into(),
                        (*country).into(),
                    ],
                )?;
            }
        }
    }

    b.table(
        "MONTH",
        &[
            ("MonthKey", ValueType::Int, false),
            ("MonthName", ValueType::Str, true),
            ("Year", ValueType::Str, true),
        ],
    )?;
    let base_year = 2005i64;
    let n_months = scale.years as i64 * 12;
    for m in 0..n_months {
        b.row(
            "MONTH",
            vec![
                (m + 1).into(),
                vocab::MONTHS[(m % 12) as usize].into(),
                (base_year + m / 12).to_string().into(),
            ],
        )?;
    }

    b.table(
        "QUERYLOG",
        &[
            ("LogKey", ValueType::Int, false),
            ("TermKey", ValueType::Int, false),
            ("GeoKey", ValueType::Int, false),
            ("MonthKey", ValueType::Int, false),
            ("SearchCount", ValueType::Int, false),
        ],
    )?;
    for lk in 1..=scale.entries as i64 {
        let ti = s.index(TERMS.len());
        let (_, _, profile) = TERMS[ti];
        // Sample the month proportionally to the term's seasonality.
        let total: u32 = profile.iter().sum();
        let mut draw = s.int(0, total as i64 - 1) as u32;
        let mut month_of_year = 0usize;
        for (mi, &w) in profile.iter().enumerate() {
            if draw < w {
                month_of_year = mi;
                break;
            }
            draw -= w;
        }
        let year_offset = s.index(scale.years as usize) as i64;
        let month_key = year_offset * 12 + month_of_year as i64 + 1;
        let count = (s.skewed_index(500) + 1) as i64;
        b.row(
            "QUERYLOG",
            vec![
                lk.into(),
                (ti as i64 + 1).into(),
                s.int(1, geo_key).into(),
                month_key.into(),
                count.into(),
            ],
        )?;
    }

    b.edge(
        "QUERYLOG.TermKey",
        "SEARCHTERM.TermKey",
        None,
        Some("SearchTerm"),
    )?;
    b.edge("QUERYLOG.GeoKey", "GEO.GeoKey", None, Some("Location"))?;
    b.edge("QUERYLOG.MonthKey", "MONTH.MonthKey", None, Some("Time"))?;

    b.dimension(
        "SearchTerm",
        &["SEARCHTERM"],
        vec![("Terms", vec!["SEARCHTERM.Category", "SEARCHTERM.Term"])],
        vec![
            ("SEARCHTERM.Term", AttrKind::Categorical),
            ("SEARCHTERM.Category", AttrKind::Categorical),
        ],
    )?;
    b.dimension(
        "Location",
        &["GEO"],
        vec![("Geo", vec!["GEO.Country", "GEO.State", "GEO.City"])],
        vec![
            ("GEO.Country", AttrKind::Categorical),
            ("GEO.State", AttrKind::Categorical),
            ("GEO.City", AttrKind::Categorical),
        ],
    )?;
    b.dimension(
        "Time",
        &["MONTH"],
        vec![("Calendar", vec!["MONTH.Year", "MONTH.MonthName"])],
        vec![
            ("MONTH.MonthName", AttrKind::Categorical),
            ("MONTH.Year", AttrKind::Categorical),
        ],
    )?;
    b.fact("QUERYLOG")?;
    b.measure_column("SearchVolume", "QUERYLOG.SearchCount")?;
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_shape() {
        let wh = build_trends(TrendsScale::small(), 3).unwrap();
        assert_eq!(wh.tables().len(), 4);
        assert_eq!(wh.schema().dimensions().len(), 3);
        assert_eq!(wh.fact_rows(), TrendsScale::small().entries);
        assert!(wh.schema().measure_by_name("SearchVolume").is_some());
    }

    #[test]
    fn seasonality_is_visible_in_the_data() {
        // "christmas gifts" searches should concentrate in December.
        let wh = build_trends(TrendsScale::small(), 3).unwrap();
        let log = wh.table(wh.table_id("QUERYLOG").unwrap());
        let month_tbl = wh.table(wh.table_id("MONTH").unwrap());
        let term_col = log.column_by_name("TermKey").unwrap();
        let month_col = log.column_by_name("MonthKey").unwrap();
        let christmas_key = TERMS
            .iter()
            .position(|(t, _, _)| *t == "christmas gifts")
            .unwrap() as i64
            + 1;
        let mut december = 0usize;
        let mut total = 0usize;
        for r in 0..log.nrows() {
            if term_col.get_int(r) == Some(christmas_key) {
                total += 1;
                let mk = month_col.get_int(r).unwrap() as usize - 1;
                let name = month_tbl.row(mk)[1].as_str().unwrap().to_string();
                if name == "December" {
                    december += 1;
                }
            }
        }
        assert!(total > 10, "term sampled often enough: {total}");
        assert!(
            december * 2 > total,
            "December holds the majority: {december}/{total}"
        );
    }

    #[test]
    fn deterministic() {
        let a = build_trends(TrendsScale::small(), 9).unwrap();
        let b = build_trends(TrendsScale::small(), 9).unwrap();
        let (ta, tb) = (
            a.table(a.table_id("QUERYLOG").unwrap()),
            b.table(b.table_id("QUERYLOG").unwrap()),
        );
        assert_eq!(ta.row(100), tb.row(100));
    }
}
