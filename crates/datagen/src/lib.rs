//! # kdap-datagen
//!
//! Deterministic synthetic data for the KDAP reproduction: the AW_ONLINE
//! and AW_RESELLER warehouses standing in for the AdventureWorks data
//! warehouse of the paper's §6.1, the EBiz running-example schema of
//! Figure 2, and labeled keyword workloads replacing the paper's manually
//! judged 50-query set (Table 3).
//!
//! All generators are seeded; the same seed yields the same warehouse
//! bit-for-bit, so every experiment in `kdap-bench` is reproducible.

#![warn(missing_docs)]

pub mod aw_online;
pub mod aw_reseller;
pub mod common;
pub mod ebiz;
pub mod rng;
pub mod trends;
pub mod vocab;
pub mod workload;

pub use aw_online::build_aw_online;
pub use aw_reseller::build_aw_reseller;
pub use common::Scale;
pub use ebiz::{build_ebiz, EbizScale};
pub use rng::Sampler;
pub use trends::{build_trends, TrendsScale};
pub use workload::{generate_workload, IntendedConstraint, LabeledQuery, WorkloadConfig};
