//! Table generators shared by the AW_ONLINE and AW_RESELLER warehouses
//! (the paper splits one AdventureWorks data warehouse into two databases
//! around its two fact tables; the conformed dimensions are shared).

use kdap_warehouse::{Value, ValueType, WarehouseBuilder, WarehouseError};

use crate::rng::Sampler;
use crate::vocab;

/// Generation scale. The paper's fact tables "each contain more than
/// 60,000 fact records"; `full()` matches that, `small()` keeps tests and
/// doc examples fast.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Customer count (AW_ONLINE).
    pub customers: usize,
    /// Product count (both databases).
    pub products: usize,
    /// Reseller count (AW_RESELLER).
    pub resellers: usize,
    /// Employee count (AW_RESELLER).
    pub employees: usize,
    /// Fact-table row count.
    pub facts: usize,
}

impl Scale {
    /// Paper-scale: >60k facts.
    pub fn full() -> Self {
        Scale {
            customers: 3000,
            products: 400,
            resellers: 240,
            employees: 90,
            facts: 60_480,
        }
        .validate()
    }

    /// Fast test scale.
    pub fn small() -> Self {
        Scale {
            customers: 150,
            products: 80,
            resellers: 40,
            employees: 20,
            facts: 2_400,
        }
        .validate()
    }

    fn validate(self) -> Self {
        assert!(self.customers > 0 && self.products > 0 && self.facts > 0);
        self
    }

    /// Multiplies the scale by `factor` (clamped to 1..=200): fact rows
    /// grow linearly, dimension tables by `√factor` — star schemas grow
    /// their fact tables much faster than their dimensions, and the
    /// sub-linear dimension growth keeps per-key fan-out rising the way
    /// real warehouses do. Scale 200 on `full()` is ~12.1M facts.
    pub fn scaled(self, factor: usize) -> Self {
        let f = factor.clamp(1, 200);
        let d = f.isqrt();
        Scale {
            customers: self.customers * d,
            products: self.products * d,
            resellers: self.resellers * d,
            employees: self.employees * d,
            facts: self.facts * f,
        }
        .validate()
    }
}

/// Geography rows `(GeoKey, City, StateKey)` + state rows
/// `(StateKey, StateProvinceName, CountryRegionName)`.
///
/// Adds `GEO` (city level) and `STATE` tables to the builder and returns
/// the number of geography (city) rows.
pub fn add_geography_tables(b: &mut WarehouseBuilder) -> Result<usize, WarehouseError> {
    b.table(
        "DimStateProvince",
        &[
            ("StateKey", ValueType::Int, false),
            ("StateProvinceName", ValueType::Str, true),
            ("CountryRegionName", ValueType::Str, true),
        ],
    )?;
    b.table(
        "DimGeography",
        &[
            ("GeographyKey", ValueType::Int, false),
            ("City", ValueType::Str, true),
            ("StateKey", ValueType::Int, false),
        ],
    )?;
    let mut state_key = 0i64;
    let mut geo_key = 0i64;
    let mut geo_rows = 0usize;
    for (country, states) in vocab::GEOGRAPHY {
        for state in *states {
            state_key += 1;
            b.row(
                "DimStateProvince",
                vec![state_key.into(), (*state).into(), (*country).into()],
            )?;
            let cities = vocab::CITIES
                .iter()
                .find(|(s, _)| s == state)
                .map(|(_, cs)| *cs)
                .unwrap_or(&[]);
            for city in cities {
                geo_key += 1;
                geo_rows += 1;
                b.row(
                    "DimGeography",
                    vec![geo_key.into(), (*city).into(), state_key.into()],
                )?;
            }
        }
    }
    Ok(geo_rows)
}

/// Product snowflake: `DimProductCategory`, `DimProductSubcategory`,
/// `DimProduct`. Returns the number of products.
pub fn add_product_tables(
    b: &mut WarehouseBuilder,
    s: &mut Sampler,
    n_products: usize,
) -> Result<usize, WarehouseError> {
    b.table(
        "DimProductCategory",
        &[
            ("CategoryKey", ValueType::Int, false),
            ("CategoryName", ValueType::Str, true),
        ],
    )?;
    b.table(
        "DimProductSubcategory",
        &[
            ("SubcategoryKey", ValueType::Int, false),
            ("ProductSubcategoryName", ValueType::Str, true),
            ("CategoryKey", ValueType::Int, false),
        ],
    )?;
    b.table(
        "DimProduct",
        &[
            ("ProductKey", ValueType::Int, false),
            ("EnglishProductName", ValueType::Str, true),
            ("Color", ValueType::Str, true),
            ("Size", ValueType::Str, true),
            ("ModelName", ValueType::Str, true),
            ("Description", ValueType::Str, true),
            ("DealerPrice", ValueType::Float, false),
            ("ListPrice", ValueType::Float, false),
            ("SubcategoryKey", ValueType::Int, false),
        ],
    )?;

    // Categories and subcategories come straight from the vocabulary.
    let mut subcat_key = 0i64;
    let mut subcats: Vec<(i64, &str, &str)> = Vec::new(); // (key, name, category)
    for (ci, (category, subs)) in vocab::CATEGORIES.iter().enumerate() {
        let cat_key = ci as i64 + 1;
        b.row(
            "DimProductCategory",
            vec![cat_key.into(), (*category).into()],
        )?;
        for sub in *subs {
            subcat_key += 1;
            b.row(
                "DimProductSubcategory",
                vec![subcat_key.into(), (*sub).into(), cat_key.into()],
            )?;
            subcats.push((subcat_key, sub, category));
        }
    }

    for pk in 1..=n_products as i64 {
        let (sk, sub_name, category) = *s.pick(&subcats);
        let (name, model) = product_name(s, sub_name, category);
        let color = *s.pick(vocab::COLORS);
        let size = *s.pick(vocab::SIZES);
        let description = *s.pick(vocab::DESCRIPTION_SNIPPETS);
        let (lo, hi) = match category {
            "Bikes" => (320.0, 3400.0),
            "Components" => (20.0, 800.0),
            "Clothing" => (5.0, 70.0),
            _ => (2.0, 120.0),
        };
        // AdventureWorks-style price points: products share a small grid
        // of canonical prices per category (variants of one model cost
        // the same), so distinct-price partitions are meaningful.
        let step = (hi - lo) / 24.0;
        let list = lo + step * s.int(0, 24) as f64;
        let list = (list * 100.0).round() / 100.0;
        let dealer = (list * 0.6 * 100.0).round() / 100.0;
        b.row(
            "DimProduct",
            vec![
                pk.into(),
                name.into(),
                color.into(),
                size.into(),
                model.into(),
                description.into(),
                dealer.into(),
                list.into(),
                sk.into(),
            ],
        )?;
    }
    Ok(n_products)
}

fn product_name(s: &mut Sampler, sub_name: &str, category: &str) -> (String, String) {
    if category == "Bikes" {
        // "Mountain-200 Black, 42" style, with the stem matching the
        // subcategory ("Mountain Bikes" → "Mountain").
        let stem = sub_name.split_whitespace().next().unwrap_or("Road");
        let num = s.int(1, 34) * 100;
        let color = *s.pick(vocab::COLORS);
        let size = *s.pick(vocab::SIZES);
        let model = format!("{stem}-{num}");
        (format!("{model} {color}, {size}"), model)
    } else {
        let part = *s.pick(vocab::PART_NAMES);
        if s.chance(0.4) {
            let qual = *s.pick(&["HL", "ML", "LL"]);
            (format!("{qual} {part}"), part.to_string())
        } else {
            (part.to_string(), part.to_string())
        }
    }
}

/// Calendar dimension: one row per day across `years`, with month /
/// quarter / year labels. Returns the number of date rows.
pub fn add_date_table(b: &mut WarehouseBuilder, years: &[i64]) -> Result<usize, WarehouseError> {
    b.table(
        "DimDate",
        &[
            ("DateKey", ValueType::Int, false),
            ("MonthName", ValueType::Str, true),
            ("CalendarQuarter", ValueType::Str, true),
            ("CalendarYear", ValueType::Str, true),
            ("DayName", ValueType::Str, true),
        ],
    )?;
    let mut key = 0i64;
    let mut rows = 0usize;
    for &year in years {
        for (mi, month) in vocab::MONTHS.iter().enumerate() {
            let quarter = format!("{} Q{}", year, mi / 3 + 1);
            for day in 0..28 {
                key += 1;
                rows += 1;
                let weekday = vocab::WEEKDAYS[(key as usize) % vocab::WEEKDAYS.len()];
                b.row(
                    "DimDate",
                    vec![
                        key.into(),
                        (*month).into(),
                        Value::from(quarter.as_str()),
                        year.to_string().into(),
                        weekday.into(),
                    ],
                )?;
                let _ = day;
            }
        }
    }
    Ok(rows)
}

/// Promotion dimension. Returns the row count.
pub fn add_promotion_table(
    b: &mut WarehouseBuilder,
    s: &mut Sampler,
) -> Result<usize, WarehouseError> {
    b.table(
        "DimPromotion",
        &[
            ("PromotionKey", ValueType::Int, false),
            ("PromotionName", ValueType::Str, true),
            ("PromotionType", ValueType::Str, true),
            ("DiscountPct", ValueType::Float, false),
        ],
    )?;
    for (i, name) in vocab::PROMOTIONS.iter().enumerate() {
        let ptype = if *name == "No Discount" {
            "No Discount"
        } else {
            vocab::PROMOTION_TYPES[1 + s.index(vocab::PROMOTION_TYPES.len() - 1)]
        };
        let pct = if *name == "No Discount" {
            0.0
        } else {
            s.float(0.02, 0.5)
        };
        b.row(
            "DimPromotion",
            vec![
                (i as i64 + 1).into(),
                (*name).into(),
                ptype.into(),
                pct.into(),
            ],
        )?;
    }
    Ok(vocab::PROMOTIONS.len())
}

/// Currency dimension. Returns the row count.
pub fn add_currency_table(b: &mut WarehouseBuilder) -> Result<usize, WarehouseError> {
    b.table(
        "DimCurrency",
        &[
            ("CurrencyKey", ValueType::Int, false),
            ("CurrencyName", ValueType::Str, true),
            ("CurrencyCode", ValueType::Str, true),
        ],
    )?;
    for (i, (name, code)) in vocab::CURRENCIES.iter().enumerate() {
        b.row(
            "DimCurrency",
            vec![(i as i64 + 1).into(), (*name).into(), (*code).into()],
        )?;
    }
    Ok(vocab::CURRENCIES.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geography_tables_link_consistently() {
        let mut b = WarehouseBuilder::new();
        let n = add_geography_tables(&mut b).unwrap();
        assert!(n > 50, "plenty of cities, got {n}");
    }

    #[test]
    fn product_names_match_subcategories_for_bikes() {
        let mut s = Sampler::new(1);
        let (name, model) = product_name(&mut s, "Mountain Bikes", "Bikes");
        assert!(name.starts_with("Mountain-"));
        assert!(model.starts_with("Mountain-"));
    }

    #[test]
    fn date_table_counts() {
        let mut b = WarehouseBuilder::new();
        let rows = add_date_table(&mut b, &[2001, 2002]).unwrap();
        assert_eq!(rows, 2 * 12 * 28);
    }

    #[test]
    fn scales_are_sane() {
        assert!(Scale::full().facts > 60_000);
        assert!(Scale::small().facts < 5_000);
    }

    #[test]
    fn scaled_grows_facts_linearly_and_dims_sublinearly() {
        let base = Scale::full();
        let s = base.scaled(100);
        assert_eq!(s.facts, base.facts * 100);
        assert_eq!(s.customers, base.customers * 10);
        assert_eq!(s.products, base.products * 10);
        // Factor 200 clears the 10M-row bar.
        assert!(base.scaled(200).facts > 10_000_000);
        // Clamped at both ends.
        assert_eq!(base.scaled(0).facts, base.facts);
        assert_eq!(base.scaled(10_000).facts, base.facts * 200);
    }
}
