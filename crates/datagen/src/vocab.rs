//! Vocabulary pools for the synthetic AdventureWorks-style warehouses.
//!
//! The experiments in the paper depend on the *ambiguity structure* of the
//! data more than on the exact tuples. The pools below deliberately seed
//! the collisions the paper discusses: state names that recur in street
//! addresses ("345 California Street"), city names that double as
//! customer first names ("Sydney"), the "Columbus Day" holiday vs.
//! Columbus the city, and product terms ("Mountain") that hit products,
//! subcategories and accessories alike.

/// Product category → subcategories (AdventureWorks-shaped).
pub const CATEGORIES: &[(&str, &[&str])] = &[
    (
        "Bikes",
        &[
            "Mountain Bikes",
            "Road Bikes",
            "Touring Bikes",
            "Chainring Bikes",
        ],
    ),
    (
        "Components",
        &[
            "Handlebars",
            "Bottom Brackets",
            "Brakes",
            "Chains",
            "Cranksets",
            "Derailleurs",
            "Forks",
            "Headsets",
            "Mountain Frames",
            "Road Frames",
            "Saddles",
            "Wheels",
        ],
    ),
    (
        "Clothing",
        &[
            "Bib-Shorts",
            "Caps",
            "Gloves",
            "Jerseys",
            "Shorts",
            "Socks",
            "Tights",
            "Vests",
        ],
    ),
    (
        "Accessories",
        &[
            "Bike Racks",
            "Bike Stands",
            "Bottles and Cages",
            "Cleaners",
            "Fenders",
            "Helmets",
            "Hydration Packs",
            "Lights",
            "Locks",
            "Panniers",
            "Pumps",
            "Tires and Tubes",
        ],
    ),
];

/// Model-name stems used to build product names like `Mountain-200 Black, 42`.
pub const MODEL_STEMS: &[&str] = &[
    "Mountain",
    "Road",
    "Touring",
    "Sport",
    "All-Purpose",
    "HL",
    "ML",
    "LL",
];

/// Product colors.
pub const COLORS: &[&str] = &[
    "Black", "Red", "Silver", "Yellow", "Blue", "Multi", "White", "Grey",
];

/// Accessory / component product names (searchable, collision-rich).
pub const PART_NAMES: &[&str] = &[
    "Mountain Tire",
    "Road Tire",
    "Touring Tire",
    "Mountain Tire Tube",
    "Flat Washer",
    "Keyed Washer",
    "Internal Lock Washer",
    "External Lock Washer",
    "Hex Nut",
    "Lock Nut",
    "Thin-Jam Hex Nut",
    "Chainring Bolts",
    "Chainring Nut",
    "Chainring",
    "Crown Race",
    "Cup-Shaped Race",
    "Cone-Shaped Race",
    "Bearing Ball",
    "BB Ball Bearing",
    "Headset Ball Bearings",
    "Blade",
    "Fork End",
    "Fork Crown",
    "Front Derailleur Cage",
    "Front Derailleur Linkage",
    "Guide Pulley",
    "Tension Pulley",
    "HL Road Frame",
    "LL Mountain Frame",
    "ML Fork",
    "LL Mountain Front Wheel",
    "Silver Hub",
    "Metal Plate",
    "Sport-100 Helmet",
    "Water Bottle",
    "Mountain Bottle Cage",
    "Road Bottle Cage",
    "Patch Kit",
    "Mountain Pump",
    "Minipump",
    "Mountain Bike Socks",
    "Racing Socks",
    "Cycling Cap",
    "Half-Finger Gloves",
    "Full-Finger Gloves",
    "Classic Vest",
    "Long-Sleeve Logo Jersey",
    "Short-Sleeve Classic Jersey",
    "Headlights - Dual-Beam",
    "Headlights - Weatherproof",
    "Taillights - Battery-Powered",
    "Fender Set - Mountain",
    "All-Purpose Bike Stand",
    "Hitch Rack - 4-Bike",
    "Hydration Pack - 70 oz",
    "Cable Lock",
];

/// Descriptive sentences used as long product-description documents.
pub const DESCRIPTION_SNIPPETS: &[&str] = &[
    "Allpurpose bar for on or off-road",
    "Black Yellow handcrafted bumps for riding comfort",
    "Sealed cartridge keeps dirt out",
    "Aluminum alloy rim with stainless steel spokes",
    "Affordable gearing with durable construction",
    "Designed for serious riders who demand performance",
    "Lightweight frame absorbs bumps on rough trails",
    "Clipless pedals improve power transfer",
    "High-density foam keeps you cool on long rides",
    "Triple crankset for a wide gearing range",
];

/// Country → state/provinces (the reproduction keeps the AdventureWorks
/// six-country footprint).
pub const GEOGRAPHY: &[(&str, &[&str])] = &[
    (
        "United States",
        &[
            "California",
            "Washington",
            "Oregon",
            "Colorado",
            "Ohio",
            "New York",
            "Texas",
            "Arizona",
        ],
    ),
    (
        "Canada",
        &["British Columbia", "Ontario", "Quebec", "Alberta"],
    ),
    (
        "Australia",
        &["New South Wales", "Victoria", "Queensland", "Tasmania"],
    ),
    ("United Kingdom", &["England", "Scotland", "Wales"]),
    (
        "France",
        &["Seine Saint Denis", "Essonne", "Loiret", "Nord"],
    ),
    ("Germany", &["Bayern", "Hessen", "Saarland", "Hamburg"]),
];

/// State/province → cities. Collision seeds: "Columbus" (city and
/// holiday), "Sydney" (city and first name), "Portland" in two states.
pub const CITIES: &[(&str, &[&str])] = &[
    (
        "California",
        &[
            "San Francisco",
            "San Jose",
            "Palo Alto",
            "Santa Cruz",
            "Torrance",
            "Central Valley",
            "Los Angeles",
            "Berkeley",
        ],
    ),
    (
        "Washington",
        &["Seattle", "Tacoma", "Spokane", "Bellingham", "Portland"],
    ),
    ("Oregon", &["Portland", "Salem", "Eugene"]),
    ("Colorado", &["Denver", "Boulder", "Aurora"]),
    ("Ohio", &["Columbus", "Cleveland", "Dayton"]),
    (
        "New York",
        &["New York City", "Ithaca", "Buffalo", "Albany"],
    ),
    ("Texas", &["Austin", "Dallas", "Houston", "San Antonio"]),
    ("Arizona", &["Phoenix", "Tucson", "Mesa"]),
    (
        "British Columbia",
        &["Vancouver", "Victoria City", "Burnaby", "Richmond"],
    ),
    ("Ontario", &["Toronto", "Ottawa", "London City"]),
    ("Quebec", &["Montreal", "Quebec City", "Laval"]),
    ("Alberta", &["Calgary", "Edmonton"]),
    (
        "New South Wales",
        &["Sydney", "Newcastle", "Wollongong", "Alexandria"],
    ),
    ("Victoria", &["Melbourne", "Geelong", "Bendigo"]),
    ("Queensland", &["Brisbane", "Cairns", "Townsville"]),
    ("Tasmania", &["Hobart", "Launceston"]),
    ("England", &["London", "Cambridge", "Oxford", "York"]),
    ("Scotland", &["Edinburgh", "Glasgow"]),
    ("Wales", &["Cardiff", "Swansea"]),
    ("Seine Saint Denis", &["Saint-Denis", "Drancy", "Bobigny"]),
    ("Essonne", &["Evry", "Massy", "Palaiseau"]),
    ("Loiret", &["Orleans", "Montargis"]),
    ("Nord", &["Lille", "Roubaix", "Dunkerque"]),
    ("Bayern", &["Munich", "Nuremberg", "Augsburg"]),
    ("Hessen", &["Frankfurt", "Wiesbaden", "Kassel"]),
    ("Saarland", &["Saarbrucken", "Neunkirchen"]),
    ("Hamburg", &["Hamburg City", "Altona"]),
];

/// Street names. State-name collisions on purpose ("California Street").
pub const STREETS: &[&str] = &[
    "California Street",
    "Washington Avenue",
    "Columbus Circle",
    "Main Street",
    "Oak Lane",
    "Maple Drive",
    "Corrinne Court",
    "Pine Road",
    "First Avenue",
    "Second Street",
    "Harbor Boulevard",
    "Sunset Boulevard",
    "Victoria Road",
    "Ontario Way",
];

/// First names; "Sydney" and "Austin" collide with cities, "Jose" with
/// "San Jose".
pub const FIRST_NAMES: &[&str] = &[
    "Fernando", "Alice", "Bob", "Carol", "David", "Emma", "Frank", "Grace", "Henry", "Isabella",
    "Jack", "Karen", "Liam", "Mia", "Noah", "Olivia", "Peter", "Quinn", "Rachel", "Samuel", "Tina",
    "Victor", "Wendy", "Xavier", "Yolanda", "Zachary", "Sydney", "Austin", "Jose", "Maria", "Chen",
    "Wei", "Ana", "Luis", "Dalton", "Casey", "Morgan", "Jordan", "Blake", "Rory",
];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
];

/// Occupations (searchable customer attribute).
pub const OCCUPATIONS: &[&str] = &[
    "Professional",
    "Management",
    "Skilled Manual",
    "Clerical",
    "Manual",
];

/// Education levels (searchable customer attribute).
pub const EDUCATION: &[&str] = &[
    "Bachelors",
    "Graduate Degree",
    "High School",
    "Partial College",
    "Partial High School",
];

/// Promotion names. Collision seeds: city + discount phrasings from the
/// paper's Table 3 ("Sydney Helmet Discount", "HalfPrice Pedal Sale").
pub const PROMOTIONS: &[&str] = &[
    "No Discount",
    "Volume Discount 11 to 14",
    "Volume Discount 15 to 24",
    "Volume Discount over 60",
    "Mountain-100 Clearance Sale",
    "Sport Helmet Discount-2002",
    "Road-650 Overstock",
    "Mountain Tire Sale",
    "Sport Helmet Discount-2003",
    "LL Road Frame Sale",
    "Touring-3000 Promotion",
    "Touring-1000 Promotion",
    "Half-Price Pedal Sale",
    "Sydney Helmet Discount",
    "Discount California December",
    "Seattle Saddles Special",
];

/// Promotion types.
pub const PROMOTION_TYPES: &[&str] = &[
    "No Discount",
    "Volume Discount",
    "Discontinued Product",
    "Seasonal Discount",
    "Excess Inventory",
    "New Product",
];

/// Currencies (name, code).
pub const CURRENCIES: &[(&str, &str)] = &[
    ("US Dollar", "USD"),
    ("Australian Dollar", "AUD"),
    ("Canadian Dollar", "CAD"),
    ("EURO", "EUR"),
    ("United Kingdom Pound", "GBP"),
    ("Deutsche Mark", "DEM"),
    ("French Franc", "FRF"),
];

/// Month names.
pub const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Weekday names.
pub const WEEKDAYS: &[&str] = &[
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
];

/// Reseller business names (searchable). "Overstock", "Sport100" style
/// tokens from Table 3 appear here.
pub const RESELLER_NAMES: &[&str] = &[
    "A Bike Store",
    "Progressive Sports",
    "Advanced Bike Components",
    "Modular Cycle Systems",
    "Metropolitan Sports Supply",
    "Aerobic Exercise Company",
    "Associated Bikes",
    "Exemplary Cycles",
    "Tandem Bicycle Store",
    "Rural Cycle Emporium",
    "Sharp Bikes",
    "Bikes and Motorbikes",
    "Country Parts Shop",
    "Bike World",
    "Vinyl and Plastic Goods Corporation",
    "Top of the Line Bikes",
    "Fun Toys and Bikes",
    "Great Bicycle Supply",
    "Overstock Warehouse",
    "Sport100 Outlet",
    "Helmet and Cycle Depot",
    "Mountain Works",
    "Valley Bicycle Specialists",
    "Downhill Specialists",
    "Brakes and Gears Inc",
    "Saddle Company",
    "Central Discount Store",
    "Global Sports Outlet",
];

/// Reseller business types.
pub const BUSINESS_TYPES: &[&str] = &["Value Added Reseller", "Specialty Bike Shop", "Warehouse"];

/// Employee titles.
pub const EMPLOYEE_TITLES: &[&str] = &[
    "Sales Representative",
    "Sales Manager",
    "Regional Manager",
    "Account Executive",
    "Territory Lead",
];

/// Employee departments.
pub const DEPARTMENTS: &[&str] = &["North America Sales", "Europe Sales", "Pacific Sales"];

/// Sales-territory groups → regions.
pub const TERRITORY_GROUPS: &[(&str, &[&str])] = &[
    (
        "North America",
        &[
            "Northwest",
            "Northeast",
            "Central",
            "Southwest",
            "Southeast",
            "Canada",
        ],
    ),
    (
        "Europe",
        &[
            "France Territory",
            "Germany Territory",
            "United Kingdom Territory",
        ],
    ),
    ("Pacific", &["Australia Territory"]),
];

/// Size strings for bike products.
pub const SIZES: &[&str] = &[
    "38", "40", "42", "44", "46", "48", "50", "52", "54", "58", "60", "62",
];

/// Holidays for the EBiz time dimension.
pub const HOLIDAYS: &[&str] = &[
    "Columbus Day",
    "New Year",
    "Independence Day",
    "Thanksgiving",
    "Labor Day",
    "Memorial Day",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_state_has_cities() {
        let states: Vec<&str> = GEOGRAPHY
            .iter()
            .flat_map(|(_, s)| s.iter().copied())
            .collect();
        for state in &states {
            assert!(
                CITIES.iter().any(|(s, _)| s == state),
                "state {state} has no cities"
            );
        }
        // And no orphan city lists.
        for (state, _) in CITIES {
            assert!(states.contains(state), "orphan city list for {state}");
        }
    }

    #[test]
    fn ambiguity_seeds_are_present() {
        // City/holiday collision.
        assert!(CITIES.iter().any(|(_, cs)| cs.contains(&"Columbus")));
        assert!(HOLIDAYS.contains(&"Columbus Day"));
        // State/street collision.
        assert!(STREETS.contains(&"California Street"));
        // City/first-name collision.
        assert!(FIRST_NAMES.contains(&"Sydney"));
        assert!(CITIES.iter().any(|(_, cs)| cs.contains(&"Sydney")));
    }

    #[test]
    fn pools_are_nonempty_and_unique() {
        fn check(name: &str, pool: &[&str]) {
            assert!(!pool.is_empty(), "{name} empty");
            let mut v: Vec<&str> = pool.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), pool.len(), "{name} has duplicates");
        }
        check("first names", FIRST_NAMES);
        check("last names", LAST_NAMES);
        check("parts", PART_NAMES);
        check("promotions", PROMOTIONS);
        check("resellers", RESELLER_NAMES);
        check("streets", STREETS);
    }
}
