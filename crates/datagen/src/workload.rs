//! Labeled keyword workloads (the Table 3 analogue).
//!
//! The paper hand-writes 50 keyword queries, evenly distributed in length,
//! and checks relevance manually. Our substitution: queries are *sampled
//! from the data itself* — each keyword span is drawn from a concrete
//! attribute instance, so the intended interpretation is known by
//! construction and the "most relevant star net" check is mechanical.
//! Ambiguity is preserved because the vocabulary deliberately collides
//! across attribute domains (see [`crate::vocab`]).

use kdap_warehouse::{ColRef, Warehouse};

use crate::rng::Sampler;

/// The ground truth of one keyword span: the instance it was drawn from.
#[derive(Debug, Clone)]
pub struct IntendedConstraint {
    /// The attribute domain of the intended instance.
    pub attr: ColRef,
    /// The instance's full value.
    pub value: String,
    /// The dimension the instance belongs to, when unambiguous (tables
    /// shared between dimensions yield `None`).
    pub dimension: Option<String>,
}

/// One labeled query.
#[derive(Debug, Clone)]
pub struct LabeledQuery {
    /// The keywords, in the order they were cut from the instances.
    pub keywords: Vec<String>,
    /// Ground truth: the instances the keywords were drawn from.
    pub intended: Vec<IntendedConstraint>,
}

impl LabeledQuery {
    /// The query as a display string.
    pub fn text(&self) -> String {
        self.keywords.join(" ")
    }
}

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries to generate (paper: 50).
    pub n_queries: usize,
    /// RNG seed for deterministic workloads.
    pub seed: u64,
    /// Maximum keywords per query (lengths are distributed evenly over
    /// `1..=max_keywords`, like the paper's 50-query set).
    pub max_keywords: usize,
    /// Restrict instance sampling to these dimensions (the AW_RESELLER
    /// experiment draws keywords from the Reseller and Employee
    /// dimensions only).
    pub dimensions: Option<Vec<String>>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_queries: 50,
            seed: 0xA11CE,
            max_keywords: 5,
            dimensions: None,
        }
    }
}

/// Generates a labeled workload over `wh`.
pub fn generate_workload(wh: &Warehouse, cfg: &WorkloadConfig) -> Vec<LabeledQuery> {
    let mut s = Sampler::new(cfg.seed);
    let attrs = sample_pool(wh, cfg);
    assert!(
        !attrs.is_empty(),
        "no searchable attributes match the workload dimension filter"
    );
    let exact = exact_value_index(wh);
    let mut out = Vec::with_capacity(cfg.n_queries);
    for qi in 0..cfg.n_queries {
        let k = 1 + qi % cfg.max_keywords;
        out.push(generate_query(wh, &attrs, &exact, &mut s, k));
    }
    out
}

/// Normalized full-text of every searchable instance, mapped to the
/// attribute domains that contain it verbatim. Used to reject *confusable*
/// spans: a span that exactly names an instance of a different domain
/// (keyword "Gloves" cut from the product "Half-Finger Gloves" exactly
/// names the subcategory "Gloves" — a human querier would mean the
/// latter, so the ground-truth label would be wrong).
fn exact_value_index(wh: &Warehouse) -> std::collections::HashMap<String, Vec<ColRef>> {
    let mut map: std::collections::HashMap<String, Vec<ColRef>> = std::collections::HashMap::new();
    for (attr, col) in wh.searchable_columns() {
        let dict = col.dict().expect("searchable");
        for (_, value) in dict.iter() {
            let key = normalize(value);
            if key.is_empty() {
                continue;
            }
            let entry = map.entry(key).or_default();
            if !entry.contains(&attr) {
                entry.push(attr);
            }
        }
    }
    map
}

fn normalize(text: &str) -> String {
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_ascii_lowercase)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Searchable attributes eligible for sampling, with their dimension name
/// when unambiguous.
fn sample_pool(wh: &Warehouse, cfg: &WorkloadConfig) -> Vec<(ColRef, Option<String>)> {
    let schema = wh.schema();
    wh.searchable_columns()
        .filter_map(|(attr, col)| {
            if col.dict().map(|d| d.len()).unwrap_or(0) == 0 {
                return None;
            }
            let dims = schema.dimensions_of_table(attr.table);
            let dim_name = if dims.len() == 1 {
                Some(schema.dimension(dims[0]).name.clone())
            } else {
                None
            };
            if let Some(filter) = &cfg.dimensions {
                match &dim_name {
                    Some(d) if filter.iter().any(|f| f == d) => {}
                    _ => return None,
                }
            }
            Some((attr, dim_name))
        })
        .collect()
}

fn generate_query(
    wh: &Warehouse,
    attrs: &[(ColRef, Option<String>)],
    exact: &std::collections::HashMap<String, Vec<ColRef>>,
    s: &mut Sampler,
    k: usize,
) -> LabeledQuery {
    let mut keywords: Vec<String> = Vec::with_capacity(k);
    let mut intended = Vec::new();
    let mut used_attrs: Vec<ColRef> = Vec::new();
    let mut remaining = k;
    let mut guard = 0;
    while remaining > 0 {
        guard += 1;
        if guard > 200 {
            break; // pathological pools only; tests assert this never trips
        }
        let (attr, dim) = s.pick(attrs);
        if used_attrs.contains(attr) {
            continue;
        }
        let dict = wh.column(*attr).dict().expect("searchable");
        let code = s.index(dict.len()) as u32;
        let value = dict.resolve(code).expect("valid code").to_string();
        // Raw tokenization (keeping short stopword-ish tokens) so that the
        // chosen window is *adjacent* in the instance text — otherwise the
        // phrase-merge step could never reconstruct the intended group.
        let tokens: Vec<String> = value
            .split(|c: char| !c.is_ascii_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_string())
            .collect();
        // Candidate windows: consecutive token runs where every token is
        // ≥3 chars (keyword-worthy).
        let usable = |t: &String| t.len() >= 3;
        let mut windows: Vec<(usize, usize)> = Vec::new(); // (start, len)
        let max_span = remaining.min(3);
        for span in 1..=max_span.min(tokens.len()) {
            for start in 0..=(tokens.len() - span) {
                if tokens[start..start + span].iter().all(usable) {
                    windows.push((start, span));
                }
            }
        }
        if windows.is_empty() {
            continue;
        }
        // Reject confusable windows: the span must not exactly name an
        // instance of a *different* attribute domain, unless it also
        // covers this instance completely (exact matches of the intended
        // value itself stay fair game).
        let value_key = normalize(&value);
        windows.retain(|&(start, span)| {
            let key = normalize(&tokens[start..start + span].join(" "));
            if key == value_key {
                return true;
            }
            match exact.get(&key) {
                None => true,
                Some(owners) => owners.iter().all(|o| o == attr),
            }
        });
        if windows.is_empty() {
            continue;
        }
        // Reject uninformative windows: a span matching a large fraction
        // of its own domain ("adventure works com" matches every email
        // address) cannot identify the intended instance, and no analyst
        // would type it to find one.
        let limit = 3.max(dict.len() / 20);
        windows.retain(|&(start, span)| {
            let needle = format!(" {} ", normalize(&tokens[start..start + span].join(" ")));
            let mut matches = 0usize;
            for (_, v) in dict.iter() {
                let hay = format!(" {} ", normalize(v));
                if hay.contains(&needle) {
                    matches += 1;
                    if matches > limit {
                        return false;
                    }
                }
            }
            true
        });
        if windows.is_empty() {
            continue;
        }
        // Paper-style queries mostly name whole entities ("Mountain
        // Bikes", "Sport Helmet Discount-2002"): prefer the longest
        // window, falling back to a random one 30% of the time for
        // harder partial-match queries.
        let (start, span) = if s.chance(0.7) {
            *windows
                .iter()
                .max_by_key(|(_, span)| *span)
                .expect("non-empty")
        } else {
            *s.pick(&windows)
        };
        keywords.extend(tokens[start..start + span].iter().cloned());
        intended.push(IntendedConstraint {
            attr: *attr,
            value,
            dimension: dim.clone(),
        });
        used_attrs.push(*attr);
        remaining -= span;
    }
    LabeledQuery { keywords, intended }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aw_online::build_aw_online;
    use crate::aw_reseller::build_aw_reseller;
    use crate::common::Scale;

    #[test]
    fn generates_requested_count_with_even_lengths() {
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        let qs = generate_workload(&wh, &WorkloadConfig::default());
        assert_eq!(qs.len(), 50);
        // Lengths 1..=5, ten queries per length by construction of the
        // round-robin (keyword spans may make some shorter, never longer).
        for q in &qs {
            assert!(!q.keywords.is_empty());
            assert!(q.keywords.len() <= 5);
            assert!(!q.intended.is_empty());
        }
        let onekw = qs.iter().filter(|q| q.keywords.len() == 1).count();
        assert!(onekw >= 10);
    }

    #[test]
    fn keywords_come_from_intended_values() {
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        let qs = generate_workload(&wh, &WorkloadConfig::default());
        for q in &qs {
            // Every keyword must appear in at least one intended value
            // (case-sensitively, since it was cut from it).
            for kw in &q.keywords {
                assert!(
                    q.intended.iter().any(|i| i.value.contains(kw.as_str())),
                    "keyword {kw} not from an intended value in {:?}",
                    q.text()
                );
            }
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        let a = generate_workload(&wh, &WorkloadConfig::default());
        let b = generate_workload(&wh, &WorkloadConfig::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.keywords, y.keywords);
        }
    }

    #[test]
    fn dimension_filter_restricts_sampling() {
        let wh = build_aw_reseller(Scale::small(), 42).unwrap();
        let cfg = WorkloadConfig {
            dimensions: Some(vec!["Reseller".into(), "Employee".into()]),
            ..WorkloadConfig::default()
        };
        let qs = generate_workload(&wh, &cfg);
        for q in &qs {
            for i in &q.intended {
                let d = i.dimension.as_deref().unwrap();
                assert!(d == "Reseller" || d == "Employee", "got {d}");
            }
        }
    }

    #[test]
    fn intended_constraints_reference_distinct_attrs() {
        let wh = build_aw_online(Scale::small(), 42).unwrap();
        let qs = generate_workload(&wh, &WorkloadConfig::default());
        for q in &qs {
            let mut attrs: Vec<_> = q.intended.iter().map(|i| i.attr).collect();
            attrs.sort();
            attrs.dedup();
            assert_eq!(attrs.len(), q.intended.len());
        }
    }
}
