//! The AW_RESELLER warehouse: the reseller-sales half of AdventureWorks
//! (§6.1) — **7 dimensions, 13 tables, four hierarchical dimensions**.
//!
//! The queries the paper runs against this database draw keywords from
//! dimensions AW_ONLINE lacks — the Reseller and Employee dimensions —
//! and Figure 6 sweeps its numerical attributes `AnnualSales`,
//! `AnnualRevenue` and `NumberOfEmployees`.

use kdap_warehouse::{AttrKind, Value, ValueType, Warehouse, WarehouseBuilder, WarehouseError};

use crate::common::{
    add_currency_table, add_date_table, add_geography_tables, add_product_tables,
    add_promotion_table, Scale,
};
use crate::rng::Sampler;
use crate::vocab;

/// Builds AW_RESELLER at the given scale, deterministically from `seed`.
pub fn build_aw_reseller(scale: Scale, seed: u64) -> Result<Warehouse, WarehouseError> {
    let mut s = Sampler::new(seed);
    let mut b = WarehouseBuilder::new();

    let n_geo = add_geography_tables(&mut b)?;
    let n_products = add_product_tables(&mut b, &mut s, scale.products)?;
    let years = [2001i64, 2002, 2003];
    let n_dates = add_date_table(&mut b, &years)?;
    let n_promos = add_promotion_table(&mut b, &mut s)?;
    let n_currencies = add_currency_table(&mut b)?;

    // Sales territories (flat dimension with group + region attributes).
    b.table(
        "DimSalesTerritory",
        &[
            ("TerritoryKey", ValueType::Int, false),
            ("Region", ValueType::Str, true),
            ("TerritoryGroup", ValueType::Str, true),
        ],
    )?;
    let mut territory_key = 0i64;
    for (group, regions) in vocab::TERRITORY_GROUPS {
        for region in *regions {
            territory_key += 1;
            b.row(
                "DimSalesTerritory",
                vec![territory_key.into(), (*region).into(), (*group).into()],
            )?;
        }
    }
    let n_territories = territory_key;

    // Employees with a Department → Title hierarchy.
    b.table(
        "DimDepartment",
        &[
            ("DepartmentKey", ValueType::Int, false),
            ("DepartmentName", ValueType::Str, true),
        ],
    )?;
    for (i, d) in vocab::DEPARTMENTS.iter().enumerate() {
        b.row("DimDepartment", vec![(i as i64 + 1).into(), (*d).into()])?;
    }
    b.table(
        "DimEmployee",
        &[
            ("EmployeeKey", ValueType::Int, false),
            ("FirstName", ValueType::Str, true),
            ("LastName", ValueType::Str, true),
            ("Title", ValueType::Str, true),
            ("DepartmentKey", ValueType::Int, false),
        ],
    )?;
    for ek in 1..=scale.employees as i64 {
        b.row(
            "DimEmployee",
            vec![
                ek.into(),
                (*s.pick(vocab::FIRST_NAMES)).into(),
                (*s.pick(vocab::LAST_NAMES)).into(),
                (*s.pick(vocab::EMPLOYEE_TITLES)).into(),
                s.int(1, vocab::DEPARTMENTS.len() as i64).into(),
            ],
        )?;
    }

    // Resellers, carrying the Figure 6 numerical attributes.
    b.table(
        "DimReseller",
        &[
            ("ResellerKey", ValueType::Int, false),
            ("ResellerName", ValueType::Str, true),
            ("BusinessType", ValueType::Str, true),
            ("AnnualSales", ValueType::Float, false),
            ("AnnualRevenue", ValueType::Float, false),
            ("NumberOfEmployees", ValueType::Float, false),
            ("GeographyKey", ValueType::Int, false),
        ],
    )?;
    for rk in 1..=scale.resellers as i64 {
        // The first pass covers every base name once (so vocabulary terms
        // like "Overstock" are always present); later resellers reuse a
        // base with a distinguishing suffix.
        let name = if (rk as usize) <= vocab::RESELLER_NAMES.len() {
            vocab::RESELLER_NAMES[rk as usize - 1].to_string()
        } else {
            format!("{} No.{rk}", s.pick(vocab::RESELLER_NAMES))
        };
        let annual_sales = (s.skewed_index(300) as f64 + 1.0) * 10_000.0;
        // Margin tiers rather than a continuum, so revenue values repeat
        // across resellers (distinct-value partitions stay meaningful).
        let margin = [0.05, 0.10, 0.15, 0.20, 0.25][s.index(5)];
        let annual_revenue = annual_sales * margin;
        let employees = (s.skewed_index(100) + 2) as f64;
        b.row(
            "DimReseller",
            vec![
                rk.into(),
                name.into(),
                (*s.pick(vocab::BUSINESS_TYPES)).into(),
                annual_sales.into(),
                annual_revenue.into(),
                employees.into(),
                s.int(1, n_geo as i64).into(),
            ],
        )?;
    }

    b.table(
        "FactResellerSales",
        &[
            ("SalesKey", ValueType::Int, false),
            ("ResellerKey", ValueType::Int, false),
            ("EmployeeKey", ValueType::Int, false),
            ("ProductKey", ValueType::Int, false),
            ("DateKey", ValueType::Int, false),
            ("PromotionKey", ValueType::Int, false),
            ("CurrencyKey", ValueType::Int, false),
            ("TerritoryKey", ValueType::Int, false),
            ("OrderQuantity", ValueType::Int, false),
            ("UnitPrice", ValueType::Float, false),
        ],
    )?;
    for fk in 1..=scale.facts as i64 {
        let reseller = s.skewed_index(scale.resellers) as i64 + 1;
        let employee = s.skewed_index(scale.employees) as i64 + 1;
        let product = s.skewed_index(n_products) as i64 + 1;
        let promotion = if s.chance(0.75) {
            1
        } else {
            s.int(2, n_promos as i64)
        };
        // Reseller orders come in bulk.
        let qty = 1 + s.skewed_index(40) as i64;
        let price = (s.float(2.0, 1800.0) * 100.0).round() / 100.0;
        b.row(
            "FactResellerSales",
            vec![
                fk.into(),
                reseller.into(),
                employee.into(),
                product.into(),
                s.int(1, n_dates as i64).into(),
                promotion.into(),
                s.int(1, n_currencies as i64).into(),
                s.int(1, n_territories).into(),
                qty.into(),
                Value::Float(price),
            ],
        )?;
    }

    b.edge(
        "FactResellerSales.ResellerKey",
        "DimReseller.ResellerKey",
        None,
        Some("Reseller"),
    )?;
    b.edge(
        "DimReseller.GeographyKey",
        "DimGeography.GeographyKey",
        None,
        None,
    )?;
    b.edge(
        "DimGeography.StateKey",
        "DimStateProvince.StateKey",
        None,
        None,
    )?;
    b.edge(
        "FactResellerSales.EmployeeKey",
        "DimEmployee.EmployeeKey",
        None,
        Some("Employee"),
    )?;
    b.edge(
        "DimEmployee.DepartmentKey",
        "DimDepartment.DepartmentKey",
        None,
        None,
    )?;
    b.edge(
        "FactResellerSales.ProductKey",
        "DimProduct.ProductKey",
        None,
        Some("Product"),
    )?;
    b.edge(
        "DimProduct.SubcategoryKey",
        "DimProductSubcategory.SubcategoryKey",
        None,
        None,
    )?;
    b.edge(
        "DimProductSubcategory.CategoryKey",
        "DimProductCategory.CategoryKey",
        None,
        None,
    )?;
    b.edge(
        "FactResellerSales.DateKey",
        "DimDate.DateKey",
        None,
        Some("Date"),
    )?;
    b.edge(
        "FactResellerSales.PromotionKey",
        "DimPromotion.PromotionKey",
        None,
        Some("Promotion"),
    )?;
    b.edge(
        "FactResellerSales.CurrencyKey",
        "DimCurrency.CurrencyKey",
        None,
        Some("Currency"),
    )?;
    b.edge(
        "FactResellerSales.TerritoryKey",
        "DimSalesTerritory.TerritoryKey",
        None,
        Some("SalesTerritory"),
    )?;

    b.dimension(
        "Reseller",
        &["DimReseller", "DimGeography", "DimStateProvince"],
        vec![(
            "ResellerGeography",
            vec![
                "DimStateProvince.CountryRegionName",
                "DimStateProvince.StateProvinceName",
                "DimGeography.City",
            ],
        )],
        vec![
            ("DimReseller.BusinessType", AttrKind::Categorical),
            ("DimReseller.AnnualSales", AttrKind::Numerical),
            ("DimReseller.AnnualRevenue", AttrKind::Numerical),
            ("DimReseller.NumberOfEmployees", AttrKind::Numerical),
            ("DimGeography.City", AttrKind::Categorical),
            ("DimStateProvince.StateProvinceName", AttrKind::Categorical),
        ],
    )?;
    b.dimension(
        "Employee",
        &["DimEmployee", "DimDepartment"],
        vec![(
            "Org",
            vec!["DimDepartment.DepartmentName", "DimEmployee.Title"],
        )],
        vec![
            ("DimEmployee.Title", AttrKind::Categorical),
            ("DimDepartment.DepartmentName", AttrKind::Categorical),
        ],
    )?;
    b.dimension(
        "Product",
        &["DimProduct", "DimProductSubcategory", "DimProductCategory"],
        vec![(
            "ProductCategories",
            vec![
                "DimProductCategory.CategoryName",
                "DimProductSubcategory.ProductSubcategoryName",
                "DimProduct.EnglishProductName",
            ],
        )],
        vec![
            (
                "DimProductSubcategory.ProductSubcategoryName",
                AttrKind::Categorical,
            ),
            ("DimProductCategory.CategoryName", AttrKind::Categorical),
            ("DimProduct.Color", AttrKind::Categorical),
            ("DimProduct.DealerPrice", AttrKind::Numerical),
        ],
    )?;
    b.dimension(
        "Date",
        &["DimDate"],
        vec![(
            "Calendar",
            vec![
                "DimDate.CalendarYear",
                "DimDate.CalendarQuarter",
                "DimDate.MonthName",
            ],
        )],
        vec![
            ("DimDate.MonthName", AttrKind::Categorical),
            ("DimDate.CalendarYear", AttrKind::Categorical),
        ],
    )?;
    b.dimension(
        "Promotion",
        &["DimPromotion"],
        vec![],
        vec![("DimPromotion.PromotionType", AttrKind::Categorical)],
    )?;
    b.dimension(
        "Currency",
        &["DimCurrency"],
        vec![],
        vec![("DimCurrency.CurrencyName", AttrKind::Categorical)],
    )?;
    b.dimension(
        "SalesTerritory",
        &["DimSalesTerritory"],
        vec![],
        vec![
            ("DimSalesTerritory.Region", AttrKind::Categorical),
            ("DimSalesTerritory.TerritoryGroup", AttrKind::Categorical),
        ],
    )?;
    b.fact("FactResellerSales")?;
    b.measure_product(
        "SalesRevenue",
        "FactResellerSales.UnitPrice",
        "FactResellerSales.OrderQuantity",
    )?;
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_description() {
        let wh = build_aw_reseller(Scale::small(), 42).unwrap();
        assert_eq!(wh.tables().len(), 13, "13 tables");
        assert_eq!(wh.schema().dimensions().len(), 7, "7 dimensions");
        let hierarchical = wh
            .schema()
            .dimensions()
            .iter()
            .filter(|d| !d.hierarchies.is_empty())
            .count();
        assert_eq!(hierarchical, 4, "4 hierarchical dimensions");
        let searchable = wh.searchable_columns().count();
        assert!(searchable > 20, "got {searchable} searchable domains");
    }

    #[test]
    fn figure6_numeric_attributes_exist() {
        let wh = build_aw_reseller(Scale::small(), 42).unwrap();
        for col in ["AnnualSales", "AnnualRevenue", "NumberOfEmployees"] {
            let r = wh.col_ref("DimReseller", col).unwrap();
            let dim = wh.schema().dimension_by_name("Reseller").unwrap();
            assert!(
                dim.groupby_candidates
                    .iter()
                    .any(|g| g.attr == r && g.kind == AttrKind::Numerical),
                "{col} must be a numerical group-by candidate"
            );
        }
    }

    #[test]
    fn reseller_and_employee_vocab_present() {
        let wh = build_aw_reseller(Scale::small(), 42).unwrap();
        let name = wh.col_ref("DimReseller", "ResellerName").unwrap();
        let dict = wh.column(name).dict().unwrap();
        assert!(dict.iter().any(|(_, v)| v.contains("Overstock")));
        let title = wh.col_ref("DimEmployee", "Title").unwrap();
        assert!(wh.column(title).dict().unwrap().len() >= 2);
    }

    #[test]
    fn deterministic_generation() {
        let a = build_aw_reseller(Scale::small(), 9).unwrap();
        let b = build_aw_reseller(Scale::small(), 9).unwrap();
        let ta = a.table(a.table_id("DimReseller").unwrap());
        let tb = b.table(b.table_id("DimReseller").unwrap());
        assert_eq!(ta.row(5), tb.row(5));
    }
}
