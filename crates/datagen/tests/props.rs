//! Property-based tests over the generators: every seed must yield a
//! structurally valid warehouse (the builder's FK check runs on finish),
//! with the paper-mandated shape invariants.

use proptest::prelude::*;

use kdap_datagen::{
    build_aw_online, build_aw_reseller, build_ebiz, build_trends, generate_workload, EbizScale,
    Scale, TrendsScale, WorkloadConfig,
};

fn tiny() -> Scale {
    Scale {
        customers: 40,
        products: 30,
        resellers: 15,
        employees: 8,
        facts: 300,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// AW_ONLINE builds for any seed with the paper's shape.
    #[test]
    fn aw_online_valid_for_any_seed(seed in 0u64..10_000) {
        let wh = build_aw_online(tiny(), seed).expect("valid");
        prop_assert_eq!(wh.tables().len(), 10);
        prop_assert_eq!(wh.schema().dimensions().len(), 5);
        prop_assert_eq!(wh.fact_rows(), 300);
        // Every measure evaluates on every fact row.
        let m = wh.schema().measures()[0].clone();
        for r in 0..wh.fact_rows() {
            prop_assert!(wh.eval_measure(&m, r).is_some());
        }
    }

    /// AW_RESELLER builds for any seed with the paper's shape.
    #[test]
    fn aw_reseller_valid_for_any_seed(seed in 0u64..10_000) {
        let wh = build_aw_reseller(tiny(), seed).expect("valid");
        prop_assert_eq!(wh.tables().len(), 13);
        prop_assert_eq!(wh.schema().dimensions().len(), 7);
    }

    /// EBiz builds for any seed; the three LOCATION join paths always
    /// exist because they are schema-level, not data-level.
    #[test]
    fn ebiz_valid_for_any_seed(seed in 0u64..10_000) {
        let scale = EbizScale {
            customers: 30,
            stores: 8,
            products: 20,
            transactions: 100,
            max_items_per_transaction: 2,
        };
        let wh = build_ebiz(scale, seed).expect("valid");
        let fact = wh.schema().fact_table();
        let loc = wh.table_id("LOCATION").unwrap();
        let paths = kdap_query::paths_between(wh.schema(), fact, loc, 8);
        prop_assert_eq!(paths.len(), 3);
    }

    /// Trends builds for any seed; search counts are positive.
    #[test]
    fn trends_valid_for_any_seed(seed in 0u64..10_000) {
        let wh = build_trends(TrendsScale { entries: 200, years: 1 }, seed).expect("valid");
        let m = wh.schema().measure_by_name("SearchVolume").unwrap().clone();
        for r in 0..wh.fact_rows() {
            prop_assert!(wh.eval_measure(&m, r).unwrap() >= 1.0);
        }
    }

    /// Workloads generate for any seed; every query is non-empty and
    /// every keyword traces back to an intended value.
    #[test]
    fn workloads_valid_for_any_seed(seed in 0u64..10_000) {
        let wh = build_aw_online(tiny(), 42).expect("valid");
        let cfg = WorkloadConfig { n_queries: 8, seed, ..WorkloadConfig::default() };
        for q in generate_workload(&wh, &cfg) {
            prop_assert!(!q.keywords.is_empty());
            for kw in &q.keywords {
                prop_assert!(
                    q.intended.iter().any(|i| i.value.contains(kw.as_str())),
                    "{kw} in {:?}", q.text()
                );
            }
        }
    }
}
