//! Request routing: URL space, admission control, per-request
//! governance, client-disconnect cancellation, and endpoint metrics.
//!
//! ```text
//! GET  /healthz                    liveness (no tenant)
//! GET  /v1/{tenant}/stats          tenant metrics + cache state
//! POST /v1/{tenant}/differentiate  ranked interpretations
//! POST /v1/{tenant}/explore        interpretation + facets
//! POST /v1/{tenant}/profile        + per-stage timing tree
//! POST /v1/{tenant}/explain        + physical plan and scan report
//! ```

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use kdap_core::api::{ApiError, QueryRequest, Verb, WireFormat};
use kdap_core::CancelToken;

use crate::http::{Request, Response};
use crate::registry::{EngineRegistry, TenantEngine};

/// Governance header: per-request deadline in milliseconds. The body
/// field `timeout_ms` wins when both are present.
pub const HDR_TIMEOUT_MS: &str = "x-kdap-timeout-ms";
/// Governance header: per-request memory budget in bytes. The body
/// field `budget_bytes` wins when both are present.
pub const HDR_BUDGET_BYTES: &str = "x-kdap-budget-bytes";

/// How often the disconnect watcher polls the client socket.
const WATCH_INTERVAL: Duration = Duration::from_millis(5);

/// Routes one parsed request to its handler and returns the response.
/// `stream` is the client connection, watched for disconnect while a
/// query runs. Error bodies are always JSON regardless of the
/// negotiated result format.
pub fn route(
    registry: &EngineRegistry,
    max_inflight: usize,
    request: &Request,
    stream: &TcpStream,
) -> Response {
    match route_inner(registry, max_inflight, request, stream) {
        Ok(resp) => resp,
        Err(err) => Response::json(err.status, err.to_json()),
    }
}

fn route_inner(
    registry: &EngineRegistry,
    max_inflight: usize,
    request: &Request,
    stream: &TcpStream,
) -> Result<Response, ApiError> {
    if request.path == "/healthz" {
        return match request.method.as_str() {
            "GET" => Ok(Response::ok("application/json", "{\"status\": \"ok\"}\n")),
            _ => Err(method_not_allowed("GET")),
        };
    }
    let Some(rest) = request.path.strip_prefix("/v1/") else {
        return Err(ApiError::not_found(format!(
            "no route for `{}` (try /healthz or /v1/{{tenant}}/…)",
            request.path
        )));
    };
    let mut segments = rest.split('/');
    let (Some(tenant_name), Some(action), None) =
        (segments.next(), segments.next(), segments.next())
    else {
        return Err(ApiError::not_found(
            "routes are /v1/{tenant}/{differentiate|explore|profile|explain|stats}",
        ));
    };
    let Some(tenant) = registry.get(tenant_name) else {
        return Err(ApiError::not_found(format!(
            "unknown tenant `{tenant_name}` (registered: {})",
            registry.tenant_names().join(", ")
        )));
    };

    if action == "stats" {
        if request.method != "GET" {
            return Err(method_not_allowed("GET"));
        }
        tenant.http_obs().inc("http.requests", 1);
        tenant.http_obs().inc("http.stats.requests", 1);
        return Ok(Response::ok("application/json", tenant.stats_json()));
    }

    let Some(verb) = Verb::parse(action) else {
        return Err(ApiError::not_found(format!(
            "unknown action `{action}` (differentiate, explore, profile, explain, stats)"
        )));
    };
    if request.method != "POST" {
        return Err(method_not_allowed("POST"));
    }
    run_query(tenant, max_inflight, verb, request, stream)
}

fn run_query(
    tenant: &Arc<TenantEngine>,
    max_inflight: usize,
    verb: Verb,
    request: &Request,
    stream: &TcpStream,
) -> Result<Response, ApiError> {
    let obs = tenant.http_obs().clone();
    obs.inc("http.requests", 1);
    obs.inc(&format!("http.{verb}.requests"), 1);

    // Everything that can fail cheaply fails before admission.
    let format = WireFormat::negotiate(request.query_param("format"), request.header("accept"))?;
    let mut query = QueryRequest::from_json(verb, &request.body)?;
    if query.options.timeout_ms.is_none() {
        query.options.timeout_ms = header_u64(request, HDR_TIMEOUT_MS)?;
    }
    if query.options.budget_bytes.is_none() {
        query.options.budget_bytes = header_u64(request, HDR_BUDGET_BYTES)?;
    }

    let Some(_slot) = tenant.admit(max_inflight) else {
        obs.inc("http.rejected", 1);
        obs.inc("http.status.429", 1);
        return Err(ApiError::too_many_requests(format!(
            "tenant `{}` is at its in-flight limit ({max_inflight})",
            tenant.name()
        )));
    };

    // Profile capture is per-session state: one capture at a time.
    let _profile_guard = (verb == Verb::Profile).then(|| tenant.lock_profile());

    let token = CancelToken::new();
    let _watcher = DisconnectWatcher::spawn(stream, token.clone());
    let timer = obs.timer();
    let result = tenant.kdap().run_cancellable(&query, Some(token));
    obs.record_ns(&format!("http.{verb}.latency_ns"), timer.stop());

    match result {
        Ok(response) => {
            let body = response.encode(format)?;
            obs.inc("http.status.200", 1);
            Ok(Response::ok(format.content_type(), body))
        }
        Err(err) => {
            let api = ApiError::from_kdap(&err);
            obs.inc(&format!("http.status.{}", api.status), 1);
            Err(api)
        }
    }
}

fn method_not_allowed(allowed: &str) -> ApiError {
    ApiError {
        status: 405,
        code: "method_not_allowed",
        message: format!("use {allowed}"),
    }
}

fn header_u64(request: &Request, name: &str) -> Result<Option<u64>, ApiError> {
    match request.header(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| ApiError::bad_request(format!("`{name}` must be a non-negative integer"))),
    }
}

/// Watches the client socket while a query runs and trips the query's
/// cancel token when the peer disconnects, so abandoned requests stop
/// consuming workers. The watcher owns a non-blocking clone of the
/// stream; dropping it stops the poll thread and restores the original
/// stream to blocking mode before the response is written.
struct DisconnectWatcher<'a> {
    stream: &'a TcpStream,
    done: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl<'a> DisconnectWatcher<'a> {
    fn spawn(stream: &'a TcpStream, token: CancelToken) -> Self {
        let done = Arc::new(AtomicBool::new(false));
        let handle = stream.try_clone().ok().and_then(|clone| {
            clone.set_nonblocking(true).ok()?;
            let done = Arc::clone(&done);
            Some(thread::spawn(move || {
                let mut buf = [0u8; 1];
                while !done.load(Ordering::Relaxed) {
                    match clone.peek(&mut buf) {
                        // EOF: the client hung up; abort the query.
                        Ok(0) => {
                            token.cancel();
                            break;
                        }
                        // Pipelined bytes: the peer is still connected.
                        Ok(_) => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(_) => {
                            token.cancel();
                            break;
                        }
                    }
                    thread::sleep(WATCH_INTERVAL);
                }
            }))
        });
        DisconnectWatcher {
            stream,
            done,
            handle,
        }
    }
}

impl Drop for DisconnectWatcher<'_> {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
        // The clone shares the socket's non-blocking flag; restore it so
        // the response write blocks normally.
        self.stream.set_nonblocking(false).ok();
    }
}
