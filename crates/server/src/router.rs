//! Request routing: URL space, admission control, per-request
//! governance, client-disconnect cancellation, trace propagation,
//! access logging, and endpoint metrics.
//!
//! ```text
//! GET  /healthz                    liveness + version/uptime/kernel
//! GET  /metrics                    Prometheus exposition, all tenants
//! GET  /v1/{tenant}/stats          tenant metrics + cache state
//! GET  /v1/{tenant}/slow           slow-query ledger
//! POST /v1/{tenant}/differentiate  ranked interpretations
//! POST /v1/{tenant}/explore        interpretation + facets
//! POST /v1/{tenant}/profile        + per-stage timing tree
//! POST /v1/{tenant}/explain        + physical plan and scan report
//! ```
//!
//! Every request gets a trace id — accepted from `x-kdap-trace-id` (1 to
//! 32 hex digits) or minted at this edge — that is echoed back in the
//! `x-kdap-trace-id` response header, stamped into profiles and error
//! bodies, and carried by access-log lines and slow-ledger entries.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use kdap_core::api::{ApiError, QueryRequest, Verb, WireFormat};
use kdap_core::CancelToken;
use kdap_obs::{
    chrome_trace, JsonLogger, LedgerEntry, LogLevel, PrometheusExport, QueryProfile, TraceId,
    PROMETHEUS_CONTENT_TYPE,
};

use crate::http::{Request, Response};
use crate::registry::{EngineRegistry, TenantEngine};

/// Governance header: per-request deadline in milliseconds. The body
/// field `timeout_ms` wins when both are present.
pub const HDR_TIMEOUT_MS: &str = "x-kdap-timeout-ms";
/// Governance header: per-request memory budget in bytes. The body
/// field `budget_bytes` wins when both are present.
pub const HDR_BUDGET_BYTES: &str = "x-kdap-budget-bytes";
/// Trace header: client-supplied trace id (1 to 32 hex digits),
/// minted at the edge when absent; echoed on every response.
pub const HDR_TRACE_ID: &str = "x-kdap-trace-id";

/// How often the disconnect watcher polls the client socket.
const WATCH_INTERVAL: Duration = Duration::from_millis(5);

/// Everything a worker hands the router per request: the tenant
/// registry, admission cap, access logger, and server start instant.
pub struct RouterContext<'a> {
    /// Named engines served by this process.
    pub registry: &'a EngineRegistry,
    /// Maximum concurrently executing queries per tenant.
    pub max_inflight: usize,
    /// Structured access logger (disabled logger = zero-cost no-op).
    pub logger: &'a JsonLogger,
    /// When the server started, for `/healthz` uptime.
    pub started: Instant,
}

/// Routes one parsed request to its handler and returns the response.
/// `stream` is the client connection, watched for disconnect while a
/// query runs. Error bodies are always JSON regardless of the
/// negotiated result format, and carry the request's trace id.
pub fn route(ctx: &RouterContext<'_>, request: &Request, stream: &TcpStream) -> Response {
    let timer = Instant::now();
    // The trace id is edge-minted or client-supplied; a client-supplied
    // id is kept byte-identical for the echo.
    let (trace, trace_err) = match request.header(HDR_TRACE_ID) {
        Some(raw) => match TraceId::parse(raw) {
            Some(_) => (raw.to_string(), None),
            None => (
                TraceId::mint().to_string(),
                Some(ApiError::bad_request(format!(
                    "`{HDR_TRACE_ID}` must be 1 to 32 hex digits"
                ))),
            ),
        },
        None => (TraceId::mint().to_string(), None),
    };
    let result = match trace_err {
        Some(err) => Err(err),
        None => route_inner(ctx, &trace, request, stream),
    };
    let mut breach = None;
    let response = match result {
        Ok(resp) => resp,
        Err(err) => {
            breach =
                matches!(err.code, "timeout" | "cancelled" | "budget_exceeded").then_some(err.code);
            Response::json(err.status, err.to_json_with_trace(Some(&trace)))
        }
    };
    let response = response.with_header(HDR_TRACE_ID, trace.clone());
    if ctx.logger.is_enabled() {
        let level = match response.status {
            s if s >= 500 => LogLevel::Error,
            s if s >= 400 => LogLevel::Warn,
            _ => LogLevel::Info,
        };
        let mut fields = vec![
            ("trace_id", trace.as_str().into()),
            ("method", request.method.as_str().into()),
            ("path", request.path.as_str().into()),
            ("status", response.status.into()),
            ("latency_ns", (timer.elapsed().as_nanos() as u64).into()),
        ];
        if let Some(code) = breach {
            fields.push(("breach", code.into()));
        }
        ctx.logger.log(level, "access", &fields);
    }
    response
}

fn route_inner(
    ctx: &RouterContext<'_>,
    trace: &str,
    request: &Request,
    stream: &TcpStream,
) -> Result<Response, ApiError> {
    if request.path == "/healthz" {
        return match request.method.as_str() {
            "GET" => Ok(Response::ok("application/json", healthz_json(ctx))),
            _ => Err(method_not_allowed("GET")),
        };
    }
    if request.path == "/metrics" {
        if request.method != "GET" {
            return Err(method_not_allowed("GET"));
        }
        let mut export = PrometheusExport::new();
        for tenant in ctx.registry.iter() {
            export.add_obs(tenant.name(), tenant.http_obs());
            export.add_obs(tenant.name(), tenant.kdap().obs());
        }
        return Ok(Response::ok(PROMETHEUS_CONTENT_TYPE, export.render()));
    }
    let Some(rest) = request.path.strip_prefix("/v1/") else {
        return Err(ApiError::not_found(format!(
            "no route for `{}` (try /healthz, /metrics or /v1/{{tenant}}/…)",
            request.path
        )));
    };
    let mut segments = rest.split('/');
    let (Some(tenant_name), Some(action), None) =
        (segments.next(), segments.next(), segments.next())
    else {
        return Err(ApiError::not_found(
            "routes are /v1/{tenant}/{differentiate|explore|profile|explain|stats|slow}",
        ));
    };
    let Some(tenant) = ctx.registry.get(tenant_name) else {
        return Err(ApiError::not_found(format!(
            "unknown tenant `{tenant_name}` (registered: {})",
            ctx.registry.tenant_names().join(", ")
        )));
    };

    if action == "stats" || action == "slow" {
        if request.method != "GET" {
            return Err(method_not_allowed("GET"));
        }
        tenant.http_obs().inc("http.requests", 1);
        tenant.http_obs().inc(&format!("http.{action}.requests"), 1);
        let body = if action == "stats" {
            tenant.stats_json()
        } else {
            tenant.slow_ledger().to_json()
        };
        return Ok(Response::ok("application/json", body));
    }

    let Some(verb) = Verb::parse(action) else {
        return Err(ApiError::not_found(format!(
            "unknown action `{action}` (differentiate, explore, profile, explain, stats, slow)"
        )));
    };
    if request.method != "POST" {
        return Err(method_not_allowed("POST"));
    }
    run_query(tenant, ctx.max_inflight, verb, trace, request, stream)
}

/// The `/healthz` body. Keeps the `"status": "ok"` shape older clients
/// substring-match on, and adds version, uptime, kernel tier, and
/// tenant count.
fn healthz_json(ctx: &RouterContext<'_>) -> String {
    format!(
        "{{\"status\": \"ok\", \"version\": \"{}\", \"uptime_s\": {}, \
         \"kernel\": \"{}\", \"tenants\": {}}}\n",
        env!("CARGO_PKG_VERSION"),
        ctx.started.elapsed().as_secs(),
        kdap_core::kernel::active_tier().name(),
        ctx.registry.len(),
    )
}

fn run_query(
    tenant: &Arc<TenantEngine>,
    max_inflight: usize,
    verb: Verb,
    trace: &str,
    request: &Request,
    stream: &TcpStream,
) -> Result<Response, ApiError> {
    let obs = tenant.http_obs().clone();
    obs.inc("http.requests", 1);
    obs.inc(&format!("http.{verb}.requests"), 1);

    // Everything that can fail cheaply fails before admission.
    // `format=trace` (Chrome trace-event JSON) only makes sense for
    // tree-shaped profile responses, so it is intercepted before wire
    // negotiation.
    let trace_format = request.query_param("format") == Some("trace");
    if trace_format && verb != Verb::Profile {
        return Err(ApiError::not_acceptable(format!(
            "`format=trace` requires the profile verb, not `{verb}`"
        )));
    }
    let format = if trace_format {
        WireFormat::Json
    } else {
        WireFormat::negotiate(request.query_param("format"), request.header("accept"))?
    };
    let mut query = QueryRequest::from_json(verb, &request.body)?;
    query.trace_id = Some(trace.to_string());
    if query.options.timeout_ms.is_none() {
        query.options.timeout_ms = header_u64(request, HDR_TIMEOUT_MS)?;
    }
    if query.options.budget_bytes.is_none() {
        query.options.budget_bytes = header_u64(request, HDR_BUDGET_BYTES)?;
    }

    let Some(_slot) = tenant.admit(max_inflight) else {
        obs.inc("http.rejected", 1);
        obs.inc("http.status.429", 1);
        return Err(ApiError::too_many_requests(format!(
            "tenant `{}` is at its in-flight limit ({max_inflight})",
            tenant.name()
        )));
    };

    // Profile capture is per-session state: one capture at a time.
    let _profile_guard = (verb == Verb::Profile).then(|| tenant.lock_profile());

    let token = CancelToken::new();
    let _watcher = DisconnectWatcher::spawn(stream, token.clone());
    let timer = obs.timer();
    let result = tenant.kdap().run_cancellable(&query, Some(token));
    let latency_ns = timer.stop();
    obs.record_ns(&format!("http.{verb}.latency_ns"), latency_ns);

    let ledger_entry =
        |status: u16, breach: Option<&str>, profile: Option<QueryProfile>| LedgerEntry {
            trace_id: Some(trace.to_string()),
            verb: verb.to_string(),
            keywords: query.keywords.clone(),
            latency_ns,
            status,
            breach: breach.map(String::from),
            profile,
        };
    match result {
        Ok(response) => {
            let body = if trace_format {
                match &response.profile {
                    Some(profile) => chrome_trace(profile),
                    None => chrome_trace(&QueryProfile::empty(&query.keywords)),
                }
            } else {
                response.encode(format)?
            };
            obs.inc("http.status.200", 1);
            tenant
                .slow_ledger()
                .record(ledger_entry(200, None, response.profile.clone()));
            let content_type = if trace_format {
                "application/json"
            } else {
                format.content_type()
            };
            Ok(Response::ok(content_type, body))
        }
        Err(err) => {
            let api = ApiError::from_kdap(&err);
            obs.inc(&format!("http.status.{}", api.status), 1);
            let breach =
                matches!(api.code, "timeout" | "cancelled" | "budget_exceeded").then_some(api.code);
            tenant
                .slow_ledger()
                .record(ledger_entry(api.status, breach, None));
            Err(api)
        }
    }
}

fn method_not_allowed(allowed: &str) -> ApiError {
    ApiError {
        status: 405,
        code: "method_not_allowed",
        message: format!("use {allowed}"),
    }
}

fn header_u64(request: &Request, name: &str) -> Result<Option<u64>, ApiError> {
    match request.header(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| ApiError::bad_request(format!("`{name}` must be a non-negative integer"))),
    }
}

/// Watches the client socket while a query runs and trips the query's
/// cancel token when the peer disconnects, so abandoned requests stop
/// consuming workers. The watcher owns a non-blocking clone of the
/// stream; dropping it stops the poll thread and restores the original
/// stream to blocking mode before the response is written.
struct DisconnectWatcher<'a> {
    stream: &'a TcpStream,
    done: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl<'a> DisconnectWatcher<'a> {
    fn spawn(stream: &'a TcpStream, token: CancelToken) -> Self {
        let done = Arc::new(AtomicBool::new(false));
        let handle = stream.try_clone().ok().and_then(|clone| {
            clone.set_nonblocking(true).ok()?;
            let done = Arc::clone(&done);
            Some(thread::spawn(move || {
                let mut buf = [0u8; 1];
                while !done.load(Ordering::Relaxed) {
                    match clone.peek(&mut buf) {
                        // EOF: the client hung up; abort the query.
                        Ok(0) => {
                            token.cancel();
                            break;
                        }
                        // Pipelined bytes: the peer is still connected.
                        Ok(_) => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(_) => {
                            token.cancel();
                            break;
                        }
                    }
                    thread::sleep(WATCH_INTERVAL);
                }
            }))
        });
        DisconnectWatcher {
            stream,
            done,
            handle,
        }
    }
}

impl Drop for DisconnectWatcher<'_> {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
        // The clone shares the socket's non-blocking flag; restore it so
        // the response write blocks normally.
        self.stream.set_nonblocking(false).ok();
    }
}
