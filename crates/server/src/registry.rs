//! The multi-tenant engine registry: many named warehouses behind one
//! process, each an [`Arc<Kdap>`] with its own cache partition, its own
//! server-side metrics, and its own profile capture lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use kdap_core::Kdap;
use kdap_obs::{json_string, snapshot_json, Obs, SlowQueryLedger};

/// How many slow/breached queries each tenant's ledger retains.
const SLOW_LEDGER_CAPACITY: usize = 32;

// `Arc<Kdap>` is shared across worker threads; this fails to compile if
// any future session field loses thread safety.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Kdap>();
};

/// One tenant: an engine plus the server-side state that surrounds it.
pub struct TenantEngine {
    name: String,
    kdap: Arc<Kdap>,
    /// Server-side metrics (request counters, latency histograms) —
    /// always enabled, independent of the engine's own observability.
    http_obs: Obs,
    /// Serializes `profile` requests: profile capture is per-session
    /// global state, so concurrent captures on one tenant would
    /// interleave their span trees.
    profile_lock: Mutex<()>,
    inflight: AtomicUsize,
    /// Retains the N slowest / most-recently-breached queries with their
    /// profiles, served at `GET /v1/{tenant}/slow`.
    slow: SlowQueryLedger,
}

impl TenantEngine {
    /// The tenant's name (its path segment).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's engine.
    pub fn kdap(&self) -> &Arc<Kdap> {
        &self.kdap
    }

    /// The tenant's server-side metrics recorder.
    pub fn http_obs(&self) -> &Obs {
        &self.http_obs
    }

    /// The tenant's slow-query ledger.
    pub fn slow_ledger(&self) -> &SlowQueryLedger {
        &self.slow
    }

    /// Holds the profile-capture lock for the duration of a `profile`
    /// request.
    pub fn lock_profile(&self) -> MutexGuard<'_, ()> {
        self.profile_lock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits one request against `max_inflight`, returning a guard that
    /// releases the slot on drop, or `None` when the tenant is saturated.
    pub fn admit(self: &Arc<Self>, max_inflight: usize) -> Option<InflightGuard> {
        let prev = self.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= max_inflight {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(InflightGuard {
            tenant: Arc::clone(self),
        })
    }

    /// Requests currently executing against this tenant.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// The `GET /v1/{tenant}/stats` body: in-flight gauge, server-side
    /// request metrics, engine metrics (governor breach counters live
    /// here when the engine has observability on), and cache state —
    /// entry counts included, so tests can assert byte-identical cache
    /// state around an aborted request.
    pub fn stats_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"tenant\": {},\n", json_string(&self.name)));
        out.push_str(&format!(
            "  \"measure\": {},\n",
            json_string(&self.kdap.measure().name)
        ));
        out.push_str(&format!("  \"inflight\": {},\n", self.inflight()));
        out.push_str("  \"http\": ");
        out.push_str(&snapshot_json(&self.http_obs.metrics_snapshot(), "  "));
        out.push_str(",\n  \"engine\": ");
        out.push_str(&snapshot_json(&self.kdap.obs().metrics_snapshot(), "  "));
        out.push_str(",\n  \"caches\": {");
        let mut first = true;
        for (key, len, counters) in [
            (
                "subspace",
                self.kdap.subspace_cache_len(),
                self.kdap.subspace_cache_counters(),
            ),
            (
                "semijoin",
                self.kdap.semijoin_cache_len(),
                self.kdap.semijoin_counters(),
            ),
        ] {
            let (Some(len), Some(c)) = (len, counters) else {
                continue;
            };
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!(
                "    \"{key}\": {{\"len\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}}",
                len, c.hits, c.misses, c.evictions
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        let h = self.kdap.cache_container_histogram();
        out.push_str(&format!(
            "  \"rowset_containers\": {{\"array\": {}, \"bitmap\": {}, \"run\": {}}},\n",
            h.arrays, h.bitmaps, h.runs
        ));
        out.push_str(&format!(
            "  \"kernel\": {{\"active\": \"{}\", \"detected\": \"{}\", \"features\": [{}], \
             \"no_simd_env\": {}}},\n",
            self.kdap.kernel_tier().name(),
            kdap_core::kernel::detected_tier().name(),
            kdap_core::kernel::detected_features()
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", "),
            kdap_core::kernel::simd_disabled_by_env(),
        ));
        let wh = self.kdap.warehouse();
        out.push_str("  \"tables\": [");
        for (ti, t) in wh.tables().iter().enumerate() {
            out.push_str(if ti == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"name\": {}, \"rows\": {}, \"heap_bytes\": {}}}",
                json_string(t.name()),
                t.nrows(),
                t.heap_bytes()
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Releases a tenant's in-flight slot on drop.
pub struct InflightGuard {
    tenant: Arc<TenantEngine>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Named engines served by one process. Built before the server starts
/// and immutable afterwards — workers share it behind an `Arc`.
#[derive(Default)]
pub struct EngineRegistry {
    tenants: BTreeMap<String, Arc<TenantEngine>>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        EngineRegistry::default()
    }

    /// Registers `kdap` under `name`, replacing any previous engine with
    /// that name. Names are path segments: keep them to
    /// `[A-Za-z0-9._-]`.
    pub fn register(&mut self, name: impl Into<String>, kdap: Arc<Kdap>) {
        let name = name.into();
        self.tenants.insert(
            name.clone(),
            Arc::new(TenantEngine {
                name,
                kdap,
                http_obs: Obs::enabled(),
                profile_lock: Mutex::new(()),
                inflight: AtomicUsize::new(0),
                slow: SlowQueryLedger::new(SLOW_LEDGER_CAPACITY),
            }),
        );
    }

    /// Builder-style [`EngineRegistry::register`].
    pub fn with(mut self, name: impl Into<String>, kdap: Arc<Kdap>) -> Self {
        self.register(name, kdap);
        self
    }

    /// Looks a tenant up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<TenantEngine>> {
        self.tenants.get(name)
    }

    /// The registered tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.keys().map(String::as_str).collect()
    }

    /// Iterates tenants in name order (for cross-tenant exports).
    pub fn iter(&self) -> impl Iterator<Item = &Arc<TenantEngine>> {
        self.tenants.values()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdap_core::testutil::ebiz_fixture;

    fn tiny_registry() -> EngineRegistry {
        let fx = ebiz_fixture();
        EngineRegistry::new().with(
            "ebiz",
            Arc::new(Kdap::builder(fx.wh).cache_capacity(8).build().unwrap()),
        )
    }

    #[test]
    fn register_and_lookup() {
        let reg = tiny_registry();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.tenant_names(), vec!["ebiz"]);
        assert!(reg.get("ebiz").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn admission_caps_inflight_requests() {
        let reg = tiny_registry();
        let t = reg.get("ebiz").unwrap();
        let a = t.admit(2).expect("slot 1");
        let _b = t.admit(2).expect("slot 2");
        assert!(t.admit(2).is_none(), "cap reached");
        assert_eq!(t.inflight(), 2);
        drop(a);
        assert_eq!(t.inflight(), 1);
        assert!(t.admit(2).is_some(), "slot released");
        // A zero cap admits nothing.
        assert!(t.admit(0).is_none());
    }

    #[test]
    fn stats_json_is_balanced_and_carries_caches() {
        let reg = tiny_registry();
        let t = reg.get("ebiz").unwrap();
        t.http_obs().inc("http.requests", 3);
        t.http_obs().record_ns("http.explore.latency_ns", 1_000);
        let out = t.stats_json();
        assert!(out.contains("\"tenant\": \"ebiz\""), "{out}");
        assert!(out.contains("\"http.requests\": 3"), "{out}");
        assert!(out.contains("\"http.explore.latency_ns\""), "{out}");
        assert!(out.contains("\"subspace\": {\"len\": 0"), "{out}");
        assert!(out.contains("\"semijoin\": {\"len\": 0"), "{out}");
        assert!(out.contains("\"rowset_containers\""), "{out}");
        assert!(out.contains("\"heap_bytes\""), "{out}");
        let tier = kdap_core::kernel::active_tier().name();
        assert!(
            out.contains(&format!("\"kernel\": {{\"active\": \"{tier}\"")),
            "{out}"
        );
        assert!(out.contains("\"no_simd_env\""), "{out}");
        assert_eq!(out.matches('{').count(), out.matches('}').count(), "{out}");
    }
}
