//! # kdap-server
//!
//! KDAP as a service: a zero-dependency HTTP/1.1 server on [`std::net`]
//! exposing one or many [`Kdap`] engines (tenants) behind the unified
//! query API of [`kdap_core::api`].
//!
//! The server is a fixed-size worker pool draining an accept queue;
//! every request is parsed by [`http`], dispatched by [`router`], and
//! executed through [`Kdap::run_cancellable`] so per-request governance
//! (deadline, memory budget, client-disconnect cancellation) maps onto
//! typed 408/429/499/507 responses. Per-tenant request counters and
//! latency histograms are served at `GET /v1/{tenant}/stats`.
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use kdap_core::Kdap;
//! # use kdap_server::{EngineRegistry, KdapServer, ServerConfig};
//! # fn engine() -> Arc<Kdap> { unimplemented!() }
//! let registry = EngineRegistry::new().with("sales", engine());
//! let server = KdapServer::start(registry, &ServerConfig::default())?;
//! println!("listening on http://{}", server.addr());
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! [`Kdap`]: kdap_core::Kdap
//! [`Kdap::run_cancellable`]: kdap_core::Kdap::run_cancellable

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod http;
pub mod registry;
pub mod router;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use kdap_core::api::ApiError;
use kdap_obs::JsonLogger;

pub use registry::{EngineRegistry, InflightGuard, TenantEngine};
pub use router::RouterContext;

use crate::http::{HttpError, Response};

/// Server deployment knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Interface to bind (default `127.0.0.1`).
    pub listen: String,
    /// Port to bind; `0` picks an ephemeral port (default `8642`).
    pub port: u16,
    /// Worker threads draining the accept queue (default `4`; `0` is
    /// clamped to `1`).
    pub workers: usize,
    /// Maximum concurrently executing queries per tenant; requests over
    /// the cap receive a typed `429`. `0` admits nothing — useful for
    /// drain testing (default `64`).
    pub max_inflight: usize,
    /// Per-connection socket read timeout, bounding slow or stalled
    /// clients (default 10 s).
    pub read_timeout: Duration,
    /// Structured access-log destination: `None` disables logging,
    /// `Some("stderr")` writes JSONL to stderr, any other value is
    /// treated as a file path opened in append mode (default `None`).
    pub log: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1".to_string(),
            port: 8642,
            workers: 4,
            max_inflight: 64,
            read_timeout: Duration::from_secs(10),
            log: None,
        }
    }
}

/// State shared by every worker beyond the registry itself: the access
/// logger and the server start instant (for `/healthz` uptime).
struct ServerState {
    logger: JsonLogger,
    started: Instant,
}

/// A running server: accept thread plus worker pool. Dropping the handle
/// leaves the threads running; call [`KdapServer::shutdown`] for an
/// orderly stop.
pub struct KdapServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl KdapServer {
    /// Binds the listener and starts the accept loop and worker pool.
    /// Returns once the socket is live — `addr()` is immediately
    /// routable (with `port: 0`, it carries the ephemeral port picked by
    /// the OS).
    pub fn start(registry: EngineRegistry, config: &ServerConfig) -> io::Result<KdapServer> {
        let listener = TcpListener::bind((config.listen.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(registry);
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(ServerState {
            logger: JsonLogger::from_spec(config.log.as_deref())?,
            started: Instant::now(),
        });

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let registry = Arc::clone(&registry);
                let config = config.clone();
                let state = Arc::clone(&state);
                thread::spawn(move || loop {
                    let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match next {
                        Ok(stream) => serve_connection(&registry, &config, &state, stream),
                        // Sender dropped: the server is shutting down.
                        Err(_) => break,
                    }
                })
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let accept_thread = thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // tx drops here; idle workers wake and exit.
        });

        Ok(KdapServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued connections, and joins every
    /// thread. In-flight requests run to completion.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
        for w in self.workers.drain(..) {
            w.join().ok();
        }
    }
}

/// Serves one connection: parse, route, respond, close.
fn serve_connection(
    registry: &EngineRegistry,
    config: &ServerConfig,
    state: &ServerState,
    mut stream: TcpStream,
) {
    stream.set_read_timeout(Some(config.read_timeout)).ok();
    stream.set_nodelay(true).ok();
    match http::read_request(&mut stream) {
        Ok(request) => {
            let ctx = RouterContext {
                registry,
                max_inflight: config.max_inflight,
                logger: &state.logger,
                started: state.started,
            };
            let response = router::route(&ctx, &request, &stream);
            http::write_response(&mut stream, &response).ok();
        }
        Err(HttpError::Bad { status, message }) => {
            let err = ApiError {
                status,
                code: "bad_request",
                message,
            };
            http::write_response(&mut stream, &Response::json(status, err.to_json())).ok();
        }
        // The socket died (or the probe connection from shutdown()
        // closed without sending): nothing to answer.
        Err(HttpError::Io(_)) => {}
    }
}
