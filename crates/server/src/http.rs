//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`]:
//! just enough to parse one request (request line, headers, fixed-length
//! body) and write one response, with hard limits on head and body size.
//! Connections are one-request (`Connection: close`) — the server's
//! clients are curl, load generators and the integration tests, none of
//! which need keep-alive.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum bytes accepted for the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum bytes accepted for a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Request path with the query string stripped (e.g. `/healthz`).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// The first header with the given lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed, mapped to the status the server
/// answers with before closing the connection.
#[derive(Debug)]
pub enum HttpError {
    /// The request violates the grammar or a size limit; respond with
    /// the carried status (400, 413 or 431) and this message.
    Bad {
        /// Response status code.
        status: u16,
        /// Human-readable reason.
        message: String,
    },
    /// The socket failed or the peer vanished mid-request; nothing can
    /// be written back.
    Io(io::Error),
}

impl HttpError {
    fn bad(status: u16, message: impl Into<String>) -> Self {
        HttpError::Bad {
            status,
            message: message.into(),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads and parses one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let (head, mut carry) = read_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::bad(400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad(
            400,
            format!("unsupported version {version}"),
        ));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad(400, format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let (path, query) = split_target(target);

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::bad(400, "invalid Content-Length"))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::bad(
            413,
            format!("body exceeds {MAX_BODY_BYTES} bytes"),
        ));
    }
    while carry.len() < content_length {
        let mut buf = [0u8; 4096];
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(HttpError::bad(400, "body shorter than Content-Length"));
        }
        carry.extend_from_slice(&buf[..n]);
    }
    carry.truncate(content_length);
    let body = String::from_utf8(carry)
        .map_err(|_| HttpError::bad(400, "request body is not valid UTF-8"))?;

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
    })
}

/// Reads up to the end of the header block; returns the head as a string
/// plus any body bytes already pulled off the socket.
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        if let Some(end) = find_head_end(&buf) {
            if end > MAX_HEAD_BYTES {
                return Err(HttpError::bad(
                    431,
                    format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                ));
            }
            let carry = buf.split_off(end + 4);
            buf.truncate(end);
            let head = String::from_utf8(buf)
                .map_err(|_| HttpError::bad(400, "request head is not valid UTF-8"))?;
            return Ok((head, carry));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::bad(
                431,
                format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a full request arrived",
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a request target into path and parsed query parameters.
/// Parameters are split on `&`/`=` without percent-decoding — the API's
/// parameter values (`format=json|csv`) never need escaping.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (p.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), query)
        }
    }
}

/// The reason phrase for the statuses this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        507 => "Insufficient Storage",
        _ => "Unknown",
    }
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra response headers (e.g. the trace-id echo), written after
    /// the fixed head.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A 200 response with the given content type.
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Self {
        Response {
            status: 200,
            content_type,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON response with an explicit status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a response header (builder style). The value must not
    /// contain CR/LF — callers pass only values they produced.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

/// Serializes `response` onto the stream. Errors are returned to the
/// caller only for logging — the connection closes either way.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Feeds `raw` to a socket pair and parses it off the server side.
    fn parse(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(raw.as_bytes()).unwrap();
            // Keep the connection open until the parse is done.
            c.shutdown(std::net::Shutdown::Write).ok();
            let mut sink = Vec::new();
            c.read_to_end(&mut sink).ok();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let out = read_request(&mut stream);
        drop(stream);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let req = parse(
            "GET /v1/sales/stats?format=json&verbose HTTP/1.1\r\n\
             Host: localhost\r\nAccept: text/csv\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/sales/stats");
        assert_eq!(req.query_param("format"), Some("json"));
        assert_eq!(req.query_param("verbose"), Some(""));
        assert_eq!(req.header("accept"), Some("text/csv"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let body = r#"{"keywords": "columbus"}"#;
        let req = parse(&format!(
            "POST /v1/sales/explore HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ))
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, body);
    }

    #[test]
    fn rejects_garbage_and_truncated_requests() {
        match parse("NONSENSE\r\n\r\n") {
            Err(HttpError::Bad { status: 400, .. }) => {}
            other => panic!("expected 400, got {other:?}"),
        }
        match parse("POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort") {
            Err(HttpError::Bad {
                status: 400,
                message,
            }) => {
                assert!(message.contains("Content-Length"), "{message}");
            }
            other => panic!("expected 400, got {other:?}"),
        }
        match parse("GET / SPDY/99\r\n\r\n") {
            Err(HttpError::Bad { status: 400, .. }) => {}
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_heads_and_bodies() {
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "x".repeat(MAX_HEAD_BYTES)
        );
        match parse(&huge) {
            Err(HttpError::Bad { status: 431, .. }) => {}
            other => panic!("expected 431, got {other:?}"),
        }
        let req = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse(&req) {
            Err(HttpError::Bad { status: 413, .. }) => {}
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            let mut out = String::new();
            c.read_to_string(&mut out).unwrap();
            out
        });
        let (mut stream, _) = listener.accept().unwrap();
        write_response(
            &mut stream,
            &Response::json(404, "{\"error\": {}}").with_header("x-kdap-trace-id", "deadbeef"),
        )
        .unwrap();
        drop(stream);
        let raw = reader.join().unwrap();
        assert!(raw.starts_with("HTTP/1.1 404 Not Found\r\n"), "{raw}");
        assert!(raw.contains("Content-Type: application/json\r\n"), "{raw}");
        assert!(raw.contains("Content-Length: 13\r\n"), "{raw}");
        assert!(raw.contains("Connection: close\r\n"), "{raw}");
        assert!(raw.contains("x-kdap-trace-id: deadbeef\r\n"), "{raw}");
        // Extra headers stay inside the head, before the blank line.
        let head_end = raw.find("\r\n\r\n").unwrap();
        assert!(raw.find("x-kdap-trace-id").unwrap() < head_end, "{raw}");
        assert!(raw.ends_with("{\"error\": {}}"), "{raw}");
    }
}
