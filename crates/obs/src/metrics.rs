//! The atomic metrics registry: named counters, gauges, and log-bucketed
//! histograms.
//!
//! All instruments are lock-free on the hot path (relaxed atomics); the
//! registry itself takes a mutex only to resolve a name to its instrument
//! `Arc`, so callers in tight loops can hoist the handle once and update
//! it without any locking at all.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of histogram buckets: one per power of two of `u64`, plus a
/// dedicated bucket for zero.
pub const N_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-bucketed histogram of `u64` samples (latencies in nanoseconds,
/// row counts, …).
///
/// Bucket `0` holds the sample `0`; bucket `k ≥ 1` holds samples in
/// `[2^(k-1), 2^k)` — i.e. samples with exactly `k` significant bits.
/// Quantiles therefore resolve to a bucket and report its *upper bound*
/// (`2^k − 1`), a deterministic over-estimate that is never off by more
/// than 2×. Count, sum, min, and max are tracked exactly, so the mean is
/// exact. Updates are relaxed atomics; merging two histograms adds their
/// buckets, which makes merge commutative and associative — per-thread
/// histograms can be combined in any order with one deterministic result.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// The bucket index of a sample: its number of significant bits.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest sample a bucket can hold.
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        match self.count() {
            0 => None,
            _ => Some(self.min.load(Ordering::Relaxed)),
        }
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        match self.count() {
            0 => None,
            _ => Some(self.max.load(Ordering::Relaxed)),
        }
    }

    /// Exact mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        match self.count() {
            0 => None,
            n => Some(self.sum() as f64 / n as f64),
        }
    }

    /// The quantile `q ∈ [0, 1]`: the upper bound of the bucket holding
    /// the sample of rank `⌈q·count⌉` (rank 1 = smallest). `None` when
    /// empty. `q = 0` reports the exact minimum and `q = 1` never exceeds
    /// the exact maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min();
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_upper(b).min(self.max.load(Ordering::Relaxed)));
            }
        }
        self.max()
    }

    /// Median (`quantile(0.5)`).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self`. Bucket-wise addition:
    /// commutative and associative, so per-thread histograms merge to the
    /// same result in any order.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Non-empty `(bucket_upper, count)` pairs, smallest bucket first.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, slot)| {
                let c = slot.load(Ordering::Relaxed);
                (c > 0).then_some((bucket_upper(b), c))
            })
            .collect()
    }
}

/// Hit/miss/eviction counters of one cache, as one comparable value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through.
    pub misses: u64,
    /// Entries dropped (capacity eviction or explicit clear).
    pub evictions: u64,
}

impl CacheCounters {
    /// Builds counters from the three values.
    pub fn new(hits: u64, misses: u64, evictions: u64) -> Self {
        CacheCounters {
            hits,
            misses,
            evictions,
        }
    }

    /// `hits / (hits + misses)`, `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The registry: name → instrument. Lookup takes a mutex; the returned
/// `Arc` handles update lock-free.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned registry only means a panic elsewhere; the maps stay
    // structurally sound.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(Histogram::new());
                map.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// Every histogram with its live handle, sorted by name. Exporters
    /// that need raw buckets (Prometheus `le` series) use this instead
    /// of the summary-only [`Metrics::snapshot`].
    pub fn histogram_entries(&self) -> Vec<(String, Arc<Histogram>)> {
        let mut out: Vec<_> = lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// A point-in-time snapshot of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSummary {
                        count: v.count(),
                        sum: v.sum(),
                        min: v.min().unwrap_or(0),
                        max: v.max().unwrap_or(0),
                        p50: v.p50().unwrap_or(0),
                        p95: v.p95().unwrap_or(0),
                        p99: v.p99().unwrap_or(0),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Summary of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Median bucket upper bound.
    pub p50: u64,
    /// 95th-percentile bucket upper bound.
    pub p95: u64,
    /// 99th-percentile bucket upper bound.
    pub p99: u64,
}

/// Every instrument of a registry at one point in time, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Human-readable rendering, one instrument per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name}: n={} mean={:.0} p50≤{} p95≤{} p99≤{} max={}\n",
                h.count,
                if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                },
                h.p50,
                h.p95,
                h.p99,
                h.max,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_exact_fields() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.mean(), Some(1106.0 / 5.0));
    }

    #[test]
    fn quantiles_on_known_inputs() {
        // Ten samples, one per bucket 1..=10: values 1, 2, 4, …, 512.
        let h = Histogram::new();
        for b in 0..10u32 {
            h.record(1u64 << b);
        }
        // Rank ⌈0.5·10⌉ = 5 → value 16, bucket upper 31.
        assert_eq!(h.p50(), Some(31));
        // Rank ⌈0.95·10⌉ = 10 → value 512, bucket upper 1023, clamped to
        // the exact max 512.
        assert_eq!(h.p95(), Some(512));
        assert_eq!(h.p99(), Some(512));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(512));
        // Rank ⌈0.1·10⌉ = 1 → value 1, bucket upper 1.
        assert_eq!(h.quantile(0.1), Some(1));
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let h = Histogram::new();
        h.record(1000);
        assert_eq!(h.p50(), Some(1000));
        assert_eq!(h.p99(), Some(1000));
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.p50(), None);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let samples: [&[u64]; 3] = [&[1, 2, 3, 100], &[7, 7, 7], &[0, 1 << 40, 55]];
        let build = |sets: &[&[u64]]| {
            let h = Histogram::new();
            for s in sets {
                for &v in *s {
                    h.record(v);
                }
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let left = build(&[samples[0]]);
        left.merge(&build(&[samples[1]]));
        left.merge(&build(&[samples[2]]));
        // a ⊕ (b ⊕ c)
        let bc = build(&[samples[1]]);
        bc.merge(&build(&[samples[2]]));
        let right = build(&[samples[0]]);
        right.merge(&bc);
        // c ⊕ b ⊕ a
        let rev = build(&[samples[2]]);
        rev.merge(&build(&[samples[1]]));
        rev.merge(&build(&[samples[0]]));
        for h in [&right, &rev] {
            assert_eq!(left.count(), h.count());
            assert_eq!(left.sum(), h.sum());
            assert_eq!(left.min(), h.min());
            assert_eq!(left.max(), h.max());
            assert_eq!(left.nonzero_buckets(), h.nonzero_buckets());
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                assert_eq!(left.quantile(q), h.quantile(q), "q={q}");
            }
        }
    }

    #[test]
    fn merge_across_threads_matches_serial() {
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i % 7919).collect();
        let serial = Histogram::new();
        for &v in &samples {
            serial.record(v);
        }
        let merged = Histogram::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = samples
                .chunks(250)
                .map(|chunk| {
                    s.spawn(move || {
                        let h = Histogram::new();
                        for &v in chunk {
                            h.record(v);
                        }
                        h
                    })
                })
                .collect();
            for h in handles {
                merged.merge(&h.join().unwrap());
            }
        });
        assert_eq!(serial.count(), merged.count());
        assert_eq!(serial.sum(), merged.sum());
        assert_eq!(serial.nonzero_buckets(), merged.nonzero_buckets());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(serial.quantile(q), merged.quantile(q));
        }
    }

    #[test]
    fn registry_reuses_instruments() {
        let m = Metrics::new();
        m.counter("a").add(1);
        m.counter("a").add(2);
        assert_eq!(m.counter("a").get(), 3);
        m.gauge("g").set(-5);
        assert_eq!(m.gauge("g").get(), -5);
        m.histogram("h").record(42);
        let snap = m.snapshot();
        assert_eq!(snap.counters["a"], 3);
        assert_eq!(snap.gauges["g"], -5);
        assert_eq!(snap.histograms["h"].count, 1);
        assert!(snap.render().contains("a = 3"));
    }

    #[test]
    fn cache_counters_hit_rate() {
        let c = CacheCounters::new(3, 1, 2);
        assert_eq!(c.hit_rate(), 0.75);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }
}
