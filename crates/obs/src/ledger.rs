//! The slow-query ledger: a fixed-capacity concurrent buffer retaining
//! the most *interesting* completed queries — governor breaches first,
//! then the slowest — each with its full profile, so an operator can ask
//! "what has been hurting lately" without having logged everything.
//!
//! Admission keeps a lock-free fast path: once the ledger is full, a
//! non-breached query cheaper than the current admission floor is
//! rejected on a single atomic load, before any lock or clone. The
//! server gives every tenant one ledger and serves it at
//! `GET /v1/{tenant}/slow`; the CLI's `kdap slow` drives one directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::profile::{json_string, QueryProfile};

/// One completed query retained by the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// The request's trace id, when it ran under one.
    pub trace_id: Option<String>,
    /// The verb executed (`explore`, `differentiate`, …).
    pub verb: String,
    /// The keyword query text.
    pub keywords: String,
    /// End-to-end latency in nanoseconds.
    pub latency_ns: u64,
    /// HTTP-style status of the outcome (200, 408, 507, …).
    pub status: u16,
    /// The governor breach that ended the query, if one did
    /// (`"timeout"`, `"budget"`, `"cancelled"`).
    pub breach: Option<String>,
    /// The query's profile tree, when profiling was active.
    pub profile: Option<QueryProfile>,
}

impl LedgerEntry {
    /// The entry as a JSON object indented under `pad` (the profile,
    /// when present, is spliced in via [`QueryProfile::to_json`]).
    pub fn to_json(&self, pad: &str) -> String {
        let mut out = format!("{pad}{{\n");
        if let Some(id) = &self.trace_id {
            out.push_str(&format!("{pad}  \"trace_id\": {},\n", json_string(id)));
        }
        out.push_str(&format!("{pad}  \"verb\": {},\n", json_string(&self.verb)));
        out.push_str(&format!(
            "{pad}  \"keywords\": {},\n",
            json_string(&self.keywords)
        ));
        out.push_str(&format!("{pad}  \"latency_ns\": {},\n", self.latency_ns));
        out.push_str(&format!("{pad}  \"status\": {}", self.status));
        if let Some(b) = &self.breach {
            out.push_str(&format!(",\n{pad}  \"breach\": {}", json_string(b)));
        }
        if let Some(p) = &self.profile {
            let indented = p.to_json().replace('\n', &format!("\n{pad}  "));
            out.push_str(&format!(",\n{pad}  \"profile\": {indented}"));
        }
        out.push_str(&format!("\n{pad}}}"));
        out
    }
}

/// A stored entry plus its bookkeeping: wall-clock admission time and a
/// monotonically increasing sequence for recency tie-breaks.
#[derive(Debug, Clone)]
struct Stored {
    entry: LedgerEntry,
    ts_ms: u64,
    seq: u64,
}

impl Stored {
    /// Interest key, ascending: the minimum is the eviction victim.
    /// Breaches beat plain slowness. Within the breached class the most
    /// recent wins (the ledger keeps the *latest* breaches); within the
    /// plain class the slowest wins, ties to the more recent.
    fn key(&self) -> (bool, u64, u64) {
        match self.entry.breach {
            Some(_) => (true, self.seq, self.seq),
            None => (false, self.entry.latency_ns, self.seq),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<Stored>,
    seq: u64,
}

/// Fixed-capacity concurrent buffer of the most interesting queries.
#[derive(Debug)]
pub struct SlowQueryLedger {
    capacity: usize,
    /// Admission floor: once full, a non-breached query strictly slower
    /// than this may be admitted; anything cheaper is rejected without
    /// taking the lock. `u64::MAX` when every retained entry is a
    /// breach.
    floor: AtomicU64,
    inner: Mutex<Inner>,
}

fn lock(m: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl SlowQueryLedger {
    /// A ledger retaining at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        SlowQueryLedger {
            capacity: capacity.max(1),
            floor: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of retained entries.
    pub fn len(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cheap admission pre-check: whether a *non-breached* query at this
    /// latency could currently be retained — one atomic load, no lock.
    /// Hot paths call this before building a [`LedgerEntry`] so rejected
    /// queries never pay the entry's string clones. Breached queries
    /// always contend and need no pre-check.
    pub fn admits(&self, latency_ns: u64) -> bool {
        let floor = self.floor.load(Ordering::Relaxed);
        floor != u64::MAX && (floor == 0 || latency_ns >= floor)
    }

    /// Offers a completed query. Returns `true` when the entry was
    /// retained. Breached entries always contend; non-breached entries
    /// are dropped on the fast path once the ledger is full and they
    /// are cheaper than the admission floor.
    pub fn record(&self, entry: LedgerEntry) -> bool {
        if entry.breach.is_none() && !self.admits(entry.latency_ns) {
            return false;
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut inner = lock(&self.inner);
        inner.seq += 1;
        let stored = Stored {
            entry,
            ts_ms,
            seq: inner.seq,
        };
        let incoming_key = stored.key();
        inner.entries.push(stored);
        let mut admitted = true;
        if inner.entries.len() > self.capacity {
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.key())
                .map(|(i, s)| (i, s.key()))
                .unwrap_or((0, (false, 0, 0)));
            admitted = victim.1 != incoming_key;
            inner.entries.swap_remove(victim.0);
        }
        // Refresh the admission floor for the fast path.
        let floor = if inner.entries.len() < self.capacity {
            0
        } else {
            inner
                .entries
                .iter()
                .filter(|s| s.entry.breach.is_none())
                .map(|s| s.entry.latency_ns)
                .min()
                .unwrap_or(u64::MAX)
        };
        self.floor.store(floor, Ordering::Relaxed);
        admitted
    }

    /// The retained entries, most interesting first (breaches before
    /// plain slow queries; breaches newest-first, plain queries
    /// slowest-first).
    pub fn snapshot(&self) -> Vec<LedgerEntry> {
        let mut stored = lock(&self.inner).entries.clone();
        stored.sort_by_key(|s| std::cmp::Reverse(s.key()));
        stored.into_iter().map(|s| s.entry).collect()
    }

    /// Drops every retained entry.
    pub fn clear(&self) {
        let mut inner = lock(&self.inner);
        inner.entries.clear();
        self.floor.store(0, Ordering::Relaxed);
    }

    /// The ledger as a JSON object:
    /// `{"capacity": N, "entries": [ … ]}` with entries in snapshot
    /// order, each carrying its admission timestamp.
    pub fn to_json(&self) -> String {
        let mut stored = lock(&self.inner).entries.clone();
        stored.sort_by_key(|s| std::cmp::Reverse(s.key()));
        let mut out = format!("{{\n  \"capacity\": {},\n  \"entries\": [", self.capacity);
        for (i, s) in stored.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            // Re-render the entry with its timestamp injected after the
            // opening brace.
            let body = s.entry.to_json("    ");
            let rest = body.strip_prefix("    {\n").unwrap_or(&body);
            out.push_str(&format!("    {{\n      \"ts_ms\": {},\n{rest}", s.ts_ms));
        }
        if !stored.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(latency_ns: u64, breach: Option<&str>) -> LedgerEntry {
        LedgerEntry {
            trace_id: Some(format!("{latency_ns:x}")),
            verb: "explore".into(),
            keywords: "columbus lcd".into(),
            latency_ns,
            status: if breach.is_some() { 408 } else { 200 },
            breach: breach.map(String::from),
            profile: None,
        }
    }

    #[test]
    fn retains_the_slowest_when_full() {
        let ledger = SlowQueryLedger::new(3);
        for lat in [10, 50, 30, 5, 100, 40] {
            ledger.record(entry(lat, None));
        }
        let latencies: Vec<u64> = ledger.snapshot().iter().map(|e| e.latency_ns).collect();
        assert_eq!(latencies, vec![100, 50, 40]);
    }

    #[test]
    fn breaches_outrank_slow_queries() {
        let ledger = SlowQueryLedger::new(2);
        ledger.record(entry(1_000_000, None));
        ledger.record(entry(900_000, None));
        assert!(ledger.record(entry(5, Some("timeout"))));
        let snap = ledger.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].breach.as_deref(), Some("timeout"));
        assert_eq!(snap[1].latency_ns, 1_000_000);
    }

    #[test]
    fn admits_mirrors_the_record_fast_path() {
        let ledger = SlowQueryLedger::new(2);
        // Not yet full: everything is admissible.
        assert!(ledger.admits(0));
        ledger.record(entry(100, None));
        ledger.record(entry(200, None));
        // Full: the floor is the cheapest retained latency.
        assert!(!ledger.admits(50));
        assert!(ledger.admits(100));
        // All-breach ledger admits no plain query.
        let breached = SlowQueryLedger::new(1);
        breached.record(entry(10, Some("timeout")));
        assert!(!breached.admits(u64::MAX));
    }

    #[test]
    fn fast_path_rejects_cheap_queries_when_full() {
        let ledger = SlowQueryLedger::new(2);
        ledger.record(entry(100, None));
        ledger.record(entry(200, None));
        assert!(!ledger.record(entry(50, None)));
        assert_eq!(ledger.len(), 2);
        // A breach-free ledger full of breaches admits no plain query.
        let breached = SlowQueryLedger::new(1);
        breached.record(entry(10, Some("budget")));
        assert!(!breached.record(entry(u64::MAX, None)));
        assert!(breached.record(entry(1, Some("timeout"))));
    }

    #[test]
    fn snapshot_orders_most_interesting_first() {
        let ledger = SlowQueryLedger::new(4);
        ledger.record(entry(10, None));
        ledger.record(entry(99, Some("timeout")));
        ledger.record(entry(70, None));
        ledger.record(entry(3, Some("budget")));
        let snap = ledger.snapshot();
        assert!(snap[0].breach.is_some() && snap[1].breach.is_some());
        // Breaches newest-first: the budget breach came after the
        // timeout; plain queries follow, slowest first.
        assert_eq!(snap[0].latency_ns, 3);
        assert_eq!(snap[1].latency_ns, 99);
        assert_eq!(snap[2].latency_ns, 70);
        assert_eq!(snap[3].latency_ns, 10);
    }

    #[test]
    fn json_has_entries_with_trace_ids_and_balanced_braces() {
        let ledger = SlowQueryLedger::new(2);
        let mut e = entry(500, Some("timeout"));
        e.profile = Some(QueryProfile::empty("columbus lcd"));
        ledger.record(e);
        let out = ledger.to_json();
        assert!(out.contains("\"capacity\": 2"), "{out}");
        assert!(out.contains("\"trace_id\": \"1f4\""), "{out}");
        assert!(out.contains("\"breach\": \"timeout\""), "{out}");
        assert!(out.contains("\"profile\": {"), "{out}");
        assert!(out.contains("\"ts_ms\": "), "{out}");
        assert_eq!(out.matches('{').count(), out.matches('}').count(), "{out}");
        // Empty ledger renders a well-formed empty list.
        let empty = SlowQueryLedger::new(1).to_json();
        assert!(empty.contains("\"entries\": []"), "{empty}");
    }

    #[test]
    fn concurrent_records_keep_capacity_and_sanity() {
        let ledger = SlowQueryLedger::new(8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ledger = &ledger;
                s.spawn(move || {
                    for i in 0..256u64 {
                        let lat = (t * 1_000 + i) % 777;
                        let breach = (i % 64 == 0).then_some("timeout");
                        ledger.record(entry(lat, breach));
                    }
                });
            }
        });
        let snap = ledger.snapshot();
        assert!(snap.len() <= 8);
        assert!(!snap.is_empty());
        // Breaches occurred often enough that the ledger retains some.
        assert!(snap.iter().any(|e| e.breach.is_some()));
    }

    #[test]
    fn clear_resets_admission() {
        let ledger = SlowQueryLedger::new(1);
        ledger.record(entry(1_000, None));
        assert!(!ledger.record(entry(5, None)));
        ledger.clear();
        assert!(ledger.is_empty());
        assert!(ledger.record(entry(5, None)));
    }
}
