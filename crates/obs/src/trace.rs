//! Per-request trace identifiers.
//!
//! A [`TraceId`] is a 128-bit value minted at the service edge (HTTP
//! router or CLI) and threaded through the request, the profile, the
//! access log, and the slow-query ledger, so one id correlates every
//! record a request leaves behind. Clients may supply their own id via
//! the `x-kdap-trace-id` header; otherwise the edge mints one.
//!
//! The workspace carries no dependencies, so minting mixes the wall
//! clock, the process id, and a process-wide counter through a
//! SplitMix64 finalizer — not cryptographic, but collision-safe for the
//! correlate-your-own-requests use case.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Process-wide mint counter; distinguishes ids minted within one clock
/// tick.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// SplitMix64 finalizer: a cheap, well-distributed bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A 128-bit per-request trace identifier, rendered as 32 lowercase hex
/// digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u128);

impl TraceId {
    /// Mints a fresh id from the wall clock, the process id, and a
    /// process-wide counter.
    pub fn mint() -> TraceId {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let hi = mix(now ^ (u64::from(std::process::id()) << 32));
        let lo = mix(seq ^ now.rotate_left(17));
        TraceId((u128::from(hi) << 64) | u128::from(lo))
    }

    /// Parses a client-supplied id: 1 to 32 hex digits, case-insensitive.
    /// Anything else is rejected (`None`) so the edge can answer 400.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(TraceId)
    }

    /// The raw 128-bit value.
    pub fn as_u128(&self) -> u128 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_unique_and_renders_32_hex() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        let s = a.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.bytes().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn parse_round_trips_display() {
        let id = TraceId::mint();
        assert_eq!(TraceId::parse(&id.to_string()), Some(id));
    }

    #[test]
    fn parse_accepts_short_and_mixed_case_hex() {
        assert_eq!(TraceId::parse("deadBEEF"), Some(TraceId(0xdead_beef)));
        assert_eq!(TraceId::parse("0"), Some(TraceId(0)));
        assert_eq!(
            TraceId::parse("ffffffffffffffffffffffffffffffff"),
            Some(TraceId(u128::MAX))
        );
    }

    #[test]
    fn parse_rejects_invalid_input() {
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse("12 34"), None);
        assert_eq!(TraceId::parse("-1"), None);
        assert_eq!(TraceId::parse(&"f".repeat(33)), None);
    }

    #[test]
    fn concurrent_mints_do_not_collide() {
        let ids: Vec<TraceId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..256).map(|_| TraceId::mint()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("mint thread"))
                .collect()
        });
        let mut seen = std::collections::HashSet::new();
        for id in &ids {
            assert!(seen.insert(*id), "duplicate trace id {id}");
        }
    }
}
