//! Telemetry exporters: Prometheus text exposition for metrics, Chrome
//! trace-event JSON (Perfetto-loadable) for [`QueryProfile`] trees, and
//! the shared JSON snapshot encoder the server's `/stats` endpoint and
//! `kdap stats --json` both use.
//!
//! Everything here renders from live instruments — the exposition builder
//! reads raw histogram buckets (not the summary percentiles), so the
//! log2 buckets export as native Prometheus histogram series with
//! cumulative `le` bounds.

use std::collections::BTreeMap;

use crate::metrics::MetricsSnapshot;
use crate::profile::{json_string, ProfileNode, QueryProfile};
use crate::recorder::Obs;

/// The `Content-Type` of the Prometheus text exposition format.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// One histogram's raw export state: non-cumulative log2 buckets plus
/// exact sum and count.
#[derive(Debug, Clone)]
struct HistSample {
    buckets: Vec<(u64, u64)>,
    sum: u64,
    count: u64,
}

/// One metric family's samples, keyed by tenant label.
#[derive(Debug)]
enum Family {
    Counter(Vec<(String, u64)>),
    Gauge(Vec<(String, i64)>),
    Histogram(Vec<(String, HistSample)>),
}

impl Family {
    fn kind(&self) -> &'static str {
        match self {
            Family::Counter(_) => "counter",
            Family::Gauge(_) => "gauge",
            Family::Histogram(_) => "histogram",
        }
    }
}

/// Builds a Prometheus text exposition (format version 0.0.4) across any
/// number of tenants. Every sample carries a `tenant` label; counters,
/// gauges and log2 histograms render as their native Prometheus types.
///
/// ```
/// use kdap_obs::{Obs, PrometheusExport};
///
/// let obs = Obs::enabled();
/// obs.inc("http.requests", 3);
/// obs.record_ns("http.explore.latency_ns", 1500);
/// let mut exp = PrometheusExport::new();
/// exp.add_obs("sales", &obs);
/// let text = exp.render();
/// assert!(text.contains("kdap_http_requests{tenant=\"sales\"} 3"));
/// assert!(kdap_obs::lint_exposition(&text).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct PrometheusExport {
    /// Sanitized family name → (original instrument name, samples).
    families: BTreeMap<String, (String, Family)>,
}

impl PrometheusExport {
    /// An empty exposition.
    pub fn new() -> Self {
        PrometheusExport::default()
    }

    /// Adds every instrument of `obs` under the given tenant label.
    /// Call repeatedly to merge several recorders (e.g. a tenant's HTTP
    /// metrics and its engine metrics) into one exposition; instrument
    /// names are expected to be disjoint across recorders of one tenant.
    pub fn add_obs(&mut self, tenant: &str, obs: &Obs) {
        let snap = obs.metrics_snapshot();
        for (name, v) in &snap.counters {
            if let Family::Counter(samples) = self.family(name, || Family::Counter(Vec::new())) {
                samples.push((tenant.to_string(), *v));
            }
        }
        for (name, v) in &snap.gauges {
            if let Family::Gauge(samples) = self.family(name, || Family::Gauge(Vec::new())) {
                samples.push((tenant.to_string(), *v));
            }
        }
        for (name, h) in obs.histogram_entries() {
            let sample = HistSample {
                buckets: h.nonzero_buckets(),
                sum: h.sum(),
                count: h.count(),
            };
            if let Family::Histogram(samples) = self.family(&name, || Family::Histogram(Vec::new()))
            {
                samples.push((tenant.to_string(), sample));
            }
        }
    }

    /// The family for `raw` name, created with `make` on first use. A
    /// kind collision (the same name used as two instrument types by
    /// different recorders) keeps the first kind; the mismatched sample
    /// is dropped rather than corrupting the exposition.
    fn family(&mut self, raw: &str, make: impl FnOnce() -> Family) -> &mut Family {
        let key = metric_name(raw);
        &mut self
            .families
            .entry(key)
            .or_insert_with(|| (raw.to_string(), make()))
            .1
    }

    /// Renders the exposition: `# HELP` and `# TYPE` lines per family,
    /// then one sample line per tenant (histograms expand to cumulative
    /// `_bucket` series plus `_sum` and `_count`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, (raw, family)) in &self.families {
            out.push_str(&format!(
                "# HELP {name} KDAP {} `{}`\n",
                family.kind(),
                help_escape(raw)
            ));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind()));
            match family {
                Family::Counter(samples) => {
                    for (tenant, v) in samples {
                        out.push_str(&format!(
                            "{name}{{tenant=\"{}\"}} {v}\n",
                            label_escape(tenant)
                        ));
                    }
                }
                Family::Gauge(samples) => {
                    for (tenant, v) in samples {
                        out.push_str(&format!(
                            "{name}{{tenant=\"{}\"}} {v}\n",
                            label_escape(tenant)
                        ));
                    }
                }
                Family::Histogram(samples) => {
                    for (tenant, h) in samples {
                        let t = label_escape(tenant);
                        let mut cum = 0u64;
                        for &(upper, count) in &h.buckets {
                            cum += count;
                            // The top log2 bucket's bound is u64::MAX;
                            // that is what `+Inf` is for.
                            if upper == u64::MAX {
                                continue;
                            }
                            out.push_str(&format!(
                                "{name}_bucket{{tenant=\"{t}\",le=\"{upper}\"}} {cum}\n"
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{{tenant=\"{t}\",le=\"+Inf\"}} {}\n",
                            h.count
                        ));
                        out.push_str(&format!("{name}_sum{{tenant=\"{t}\"}} {}\n", h.sum));
                        out.push_str(&format!("{name}_count{{tenant=\"{t}\"}} {}\n", h.count));
                    }
                }
            }
        }
        out
    }
}

/// Maps an instrument name onto a valid Prometheus metric name:
/// `kdap_` prefix, every character outside `[A-Za-z0-9_:]` becomes `_`.
fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 5);
    out.push_str("kdap_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format: `\`, `"`, newline.
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text: `\` and newline.
fn help_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Lints a Prometheus text exposition: every sample's family must have
/// `# HELP` and `# TYPE` lines (HELP first), metric names and label
/// syntax must be well-formed, label values must close their quotes, and
/// sample values must parse as numbers. Returns the number of sample
/// lines on success; the first violation (with its line number) on
/// failure. This is the checker CI runs against a live `/metrics`
/// scrape.
pub fn lint_exposition(text: &str) -> Result<usize, String> {
    let mut helped: BTreeMap<String, ()> = BTreeMap::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("HELP"), Some(name), Some(_)) => {
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: bad metric name in HELP: `{name}`"));
                    }
                    helped.insert(name.to_string(), ());
                }
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: bad metric name in TYPE: `{name}`"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown TYPE kind `{kind}`"));
                    }
                    if !helped.contains_key(name) {
                        return Err(format!("line {lineno}: TYPE for `{name}` without HELP"));
                    }
                    if typed.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(format!("line {lineno}: duplicate TYPE for `{name}`"));
                    }
                }
                _ => return Err(format!("line {lineno}: malformed comment line `{line}`")),
            }
            continue;
        }
        // A sample line: name[{labels}] value.
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample has no value: `{line}`"))?;
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {lineno}: bad sample value `{value}`"));
        }
        let (name, labels) = match name_labels.split_once('{') {
            None => (name_labels, None),
            Some((n, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (n, Some(body))
            }
        };
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name `{name}`"));
        }
        let labels = match labels {
            Some(body) => {
                parse_labels(body).map_err(|e| format!("line {lineno}: {e}: `{line}`"))?
            }
            None => Vec::new(),
        };
        // Resolve the family: histogram series carry suffixes.
        let family = [
            name,
            name.strip_suffix("_bucket").unwrap_or(name),
            name.strip_suffix("_sum").unwrap_or(name),
            name.strip_suffix("_count").unwrap_or(name),
        ]
        .into_iter()
        .find(|candidate| typed.contains_key(*candidate))
        .ok_or_else(|| format!("line {lineno}: sample `{name}` has no TYPE declaration"))?;
        if typed.get(family).map(String::as_str) == Some("histogram")
            && name.ends_with("_bucket")
            && !labels.iter().any(|(k, _)| k == "le")
        {
            return Err(format!(
                "line {lineno}: histogram bucket without `le` label"
            ));
        }
        samples += 1;
    }
    Ok(samples)
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*`
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses `key="value",key="value"` with exposition-format escapes.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let bytes = body.as_bytes();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let key_start = pos;
        while pos < bytes.len() && bytes[pos] != b'=' {
            pos += 1;
        }
        let key = &body[key_start..pos];
        if key.is_empty() || !valid_metric_name(key) {
            return Err(format!("bad label name `{key}`"));
        }
        if pos >= bytes.len() || bytes[pos] != b'=' {
            return Err("label without `=`".to_string());
        }
        pos += 1;
        if pos >= bytes.len() || bytes[pos] != b'"' {
            return Err("label value must be quoted".to_string());
        }
        pos += 1;
        let mut value = String::new();
        loop {
            match bytes.get(pos) {
                None => return Err("unterminated label value".to_string()),
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(pos + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err("bad escape in label value".to_string()),
                    }
                    pos += 2;
                }
                Some(_) => {
                    // Step one UTF-8 scalar.
                    let start = pos;
                    pos += 1;
                    while bytes.get(pos).is_some_and(|b| (*b & 0xC0) == 0x80) {
                        pos += 1;
                    }
                    value.push_str(&body[start..pos]);
                }
            }
        }
        out.push((key.to_string(), value));
        match bytes.get(pos) {
            None => break,
            Some(b',') => pos += 1,
            Some(_) => return Err("expected `,` between labels".to_string()),
        }
    }
    Ok(out)
}

/// Encodes a metrics snapshot as `{"counters": …, "gauges": …,
/// "histograms": …}`, indented under `pad` — the shared encoder behind
/// `GET /v1/{tenant}/stats` and `kdap stats --json`.
pub fn snapshot_json(snap: &MetricsSnapshot, pad: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("{pad}  \"counters\": {{"));
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("{pad}    {}: {}", json_string(name), v));
    }
    if !snap.counters.is_empty() {
        out.push_str(&format!("\n{pad}  "));
    }
    out.push_str("},\n");
    out.push_str(&format!("{pad}  \"gauges\": {{"));
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("{pad}    {}: {}", json_string(name), v));
    }
    if !snap.gauges.is_empty() {
        out.push_str(&format!("\n{pad}  "));
    }
    out.push_str("},\n");
    out.push_str(&format!("{pad}  \"histograms\": {{"));
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "{pad}    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            json_string(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.p50,
            h.p95,
            h.p99
        ));
    }
    if !snap.histograms.is_empty() {
        out.push_str(&format!("\n{pad}  "));
    }
    out.push_str(&format!("}}\n{pad}}}"));
    out
}

/// Serializes a [`QueryProfile`] tree as Chrome trace-event JSON — the
/// format Perfetto and `chrome://tracing` load directly. Every stage
/// becomes one complete (`"ph": "X"`) event; children are laid out
/// inside their parent's interval in execution order, so the flame chart
/// mirrors the profile tree. Timestamps are microseconds.
pub fn chrome_trace(profile: &QueryProfile) -> String {
    let mut events: Vec<String> = Vec::with_capacity(profile.len());
    let mut cursor = 0u64;
    for root in &profile.roots {
        trace_events(root, cursor, &mut events);
        cursor += root.wall_ns;
    }
    let trace_id = match &profile.trace_id {
        Some(id) => json_string(id),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {{\"label\": {}, \
         \"trace_id\": {}, \"total_ns\": {}}},\n  \"traceEvents\": [\n{}\n  ]\n}}\n",
        json_string(&profile.label),
        trace_id,
        profile.total_ns(),
        events.join(",\n"),
    )
}

fn trace_events(node: &ProfileNode, start_ns: u64, events: &mut Vec<String>) {
    let mut args = format!("\"wall_ns\": {}", node.wall_ns);
    if let Some(r) = node.rows_in {
        args.push_str(&format!(", \"rows_in\": {r}"));
    }
    if let Some(r) = node.rows_out {
        args.push_str(&format!(", \"rows_out\": {r}"));
    }
    if let Some(c) = node.cache {
        args.push_str(&format!(
            ", \"cache\": {}",
            json_string(match c {
                crate::profile::CacheOutcome::Hit => "hit",
                crate::profile::CacheOutcome::Miss => "miss",
            })
        ));
    }
    for (k, v) in &node.notes {
        args.push_str(&format!(", {}: {}", json_string(k), json_string(v)));
    }
    events.push(format!(
        "    {{\"name\": {}, \"cat\": \"kdap\", \"ph\": \"X\", \"ts\": {:.3}, \
         \"dur\": {:.3}, \"pid\": 1, \"tid\": 1, \"args\": {{{args}}}}}",
        json_string(&node.name),
        start_ns as f64 / 1e3,
        node.wall_ns as f64 / 1e3,
    ));
    let mut cursor = start_ns;
    for child in &node.children {
        trace_events(child, cursor, events);
        cursor += child.wall_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CacheOutcome;

    fn two_tenant_exposition() -> String {
        let a = Obs::enabled();
        a.inc("http.requests", 3);
        a.inc("governor.timeouts", 1);
        a.gauge("inflight", 2);
        a.record_ns("http.explore.latency_ns", 900);
        a.record_ns("http.explore.latency_ns", 1500);
        let b = Obs::enabled();
        b.inc("http.requests", 7);
        let mut exp = PrometheusExport::new();
        exp.add_obs("aw \"prod\"", &a);
        exp.add_obs("ebiz", &b);
        exp.render()
    }

    #[test]
    fn render_carries_native_types_and_tenant_labels() {
        let text = two_tenant_exposition();
        assert!(text.contains("# TYPE kdap_http_requests counter"), "{text}");
        assert!(text.contains("# TYPE kdap_inflight gauge"), "{text}");
        assert!(
            text.contains("# TYPE kdap_http_explore_latency_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("kdap_http_requests{tenant=\"aw \\\"prod\\\"\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("kdap_http_requests{tenant=\"ebiz\"} 7"),
            "{text}"
        );
        // 900 ns lands in the 512..1023 bucket, 1500 in 1024..2047;
        // cumulative counts are 1 then 2.
        assert!(
            text.contains(
                "kdap_http_explore_latency_ns_bucket{tenant=\"aw \\\"prod\\\"\",le=\"1023\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "kdap_http_explore_latency_ns_bucket{tenant=\"aw \\\"prod\\\"\",le=\"2047\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "kdap_http_explore_latency_ns_bucket{tenant=\"aw \\\"prod\\\"\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains("kdap_http_explore_latency_ns_sum{tenant=\"aw \\\"prod\\\"\"} 2400"),
            "{text}"
        );
        assert!(
            text.contains("kdap_http_explore_latency_ns_count{tenant=\"aw \\\"prod\\\"\"} 2"),
            "{text}"
        );
        // Every sample line carries a tenant label.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            assert!(line.contains("tenant=\""), "unlabelled sample: {line}");
        }
    }

    #[test]
    fn render_passes_the_linter() {
        let text = two_tenant_exposition();
        let n = lint_exposition(&text).expect("lint-clean exposition");
        assert!(n >= 8, "expected at least 8 samples, got {n}");
    }

    #[test]
    fn linter_rejects_violations() {
        for (bad, needle) in [
            ("kdap_x 1\n", "no TYPE"),
            ("# TYPE kdap_x counter\nkdap_x 1\n", "without HELP"),
            (
                "# HELP kdap_x h\n# TYPE kdap_x widget\n",
                "unknown TYPE kind",
            ),
            (
                "# HELP kdap_x h\n# TYPE kdap_x counter\nkdap_x{tenant=ebiz} 1\n",
                "quoted",
            ),
            (
                "# HELP kdap_x h\n# TYPE kdap_x counter\nkdap_x{tenant=\"e} 1\n",
                "unterminated",
            ),
            (
                "# HELP kdap_x h\n# TYPE kdap_x counter\nkdap_x notanumber\n",
                "bad sample value",
            ),
            (
                "# HELP kdap_x h\n# TYPE kdap_x histogram\nkdap_x_bucket{tenant=\"e\"} 1\n",
                "`le`",
            ),
            ("# HELP 9bad h\n", "bad metric name"),
        ] {
            let err = lint_exposition(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad:?} → {err}");
        }
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(
            metric_name("http.explore.latency_ns"),
            "kdap_http_explore_latency_ns"
        );
        assert_eq!(metric_name("weird name!"), "kdap_weird_name_");
    }

    #[test]
    fn disabled_obs_contributes_nothing() {
        let mut exp = PrometheusExport::new();
        exp.add_obs("t", &Obs::disabled());
        assert!(exp.render().is_empty());
    }

    #[test]
    fn snapshot_json_is_balanced() {
        let obs = Obs::enabled();
        obs.inc("c", 2);
        obs.gauge("g", -1);
        obs.record_ns("h", 100);
        let out = snapshot_json(&obs.metrics_snapshot(), "");
        assert!(out.contains("\"c\": 2"), "{out}");
        assert!(out.contains("\"g\": -1"), "{out}");
        assert!(out.contains("\"count\": 1"), "{out}");
        assert_eq!(out.matches('{').count(), out.matches('}').count(), "{out}");
    }

    fn sample_profile() -> QueryProfile {
        let mut root = ProfileNode::new("differentiate");
        root.wall_ns = 3_000;
        let mut child = ProfileNode::new("textindex.search");
        child.wall_ns = 1_000;
        child.rows_out = Some(12);
        child.cache = Some(CacheOutcome::Miss);
        child.notes.push(("terms".into(), "2".into()));
        root.children.push(child);
        let mut explore = ProfileNode::new("explore");
        explore.wall_ns = 7_000;
        QueryProfile {
            label: "columbus lcd".into(),
            trace_id: Some("deadbeef".into()),
            roots: vec![root, explore],
        }
    }

    #[test]
    fn chrome_trace_has_complete_events_with_nested_layout() {
        let out = chrome_trace(&sample_profile());
        assert!(out.contains("\"traceEvents\": ["), "{out}");
        assert!(out.contains("\"ph\": \"X\""), "{out}");
        assert!(out.contains("\"trace_id\": \"deadbeef\""), "{out}");
        // Root at ts 0 lasting 3 µs; its child starts inside it; the
        // second root starts where the first ended.
        assert!(
            out.contains("\"name\": \"differentiate\", \"cat\": \"kdap\", \"ph\": \"X\", \"ts\": 0.000, \"dur\": 3.000"),
            "{out}"
        );
        assert!(
            out.contains("\"name\": \"textindex.search\", \"cat\": \"kdap\", \"ph\": \"X\", \"ts\": 0.000, \"dur\": 1.000"),
            "{out}"
        );
        assert!(
            out.contains("\"name\": \"explore\", \"cat\": \"kdap\", \"ph\": \"X\", \"ts\": 3.000, \"dur\": 7.000"),
            "{out}"
        );
        assert!(out.contains("\"rows_out\": 12"), "{out}");
        assert!(out.contains("\"cache\": \"miss\""), "{out}");
        assert!(out.contains("\"terms\": \"2\""), "{out}");
        assert_eq!(out.matches('{').count(), out.matches('}').count(), "{out}");
        assert_eq!(out.matches('[').count(), out.matches(']').count(), "{out}");
    }

    #[test]
    fn chrome_trace_of_empty_profile_is_well_formed() {
        let out = chrome_trace(&QueryProfile::empty("nothing"));
        assert!(out.contains("\"trace_id\": null"), "{out}");
        assert_eq!(out.matches('{').count(), out.matches('}').count(), "{out}");
    }
}
