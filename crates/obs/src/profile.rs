//! Per-query profiles: a tree of pipeline stages, each carrying wall
//! time, rows in/out, cache outcome, and free-form notes.
//!
//! The tree is built by the recorder's span stack (see
//! [`crate::recorder`]) and returned to callers as an immutable
//! [`QueryProfile`]. Its *structure* — node names, nesting, order — is a
//! pure function of the query and data, never of thread scheduling:
//! parallel workers report durations to the coordinating thread, which
//! records them as leaves in deterministic (chunk/step) order.

/// Cache outcome of one profiled stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a cache.
    Hit,
    /// Computed and (possibly) inserted.
    Miss,
}

impl CacheOutcome {
    fn as_str(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// One stage in a query profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Stage name, e.g. `"semijoin"` or `"explore.scan_a"`.
    pub name: String,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Rows entering the stage, when meaningful.
    pub rows_in: Option<u64>,
    /// Rows leaving the stage, when meaningful.
    pub rows_out: Option<u64>,
    /// Cache outcome, when the stage consulted a cache.
    pub cache: Option<CacheOutcome>,
    /// Free-form `key=value` annotations, in insertion order.
    pub notes: Vec<(String, String)>,
    /// Child stages, in execution order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// A node with just a name; everything else defaults to empty.
    pub fn new(name: impl Into<String>) -> Self {
        ProfileNode {
            name: name.into(),
            wall_ns: 0,
            rows_in: None,
            rows_out: None,
            cache: None,
            notes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Total number of nodes in this subtree, including `self`.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(ProfileNode::len).sum::<usize>()
    }

    /// Always false — a node is at least itself.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn annotations(&self) -> String {
        let mut parts = Vec::new();
        if let Some(r) = self.rows_in {
            parts.push(format!("in={r}"));
        }
        if let Some(r) = self.rows_out {
            parts.push(format!("out={r}"));
        }
        if let Some(c) = self.cache {
            parts.push(format!("cache={}", c.as_str()));
        }
        for (k, v) in &self.notes {
            parts.push(format!("{k}={v}"));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("  [{}]", parts.join(" "))
        }
    }

    fn render_into(&self, out: &mut String, depth: usize, total_ns: u64) {
        let pct = if total_ns == 0 {
            0.0
        } else {
            self.wall_ns as f64 * 100.0 / total_ns as f64
        };
        out.push_str(&format!(
            "{:indent$}{:<w$} {:>10} {:>6.1}%{}\n",
            "",
            self.name,
            fmt_ns(self.wall_ns),
            pct,
            self.annotations(),
            indent = depth * 2,
            w = 28usize.saturating_sub(depth * 2),
        ));
        for c in &self.children {
            c.render_into(out, depth + 1, total_ns);
        }
    }

    fn json_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        out.push_str(&format!("{pad}{{\n"));
        out.push_str(&format!("{pad}  \"name\": {},\n", json_string(&self.name)));
        out.push_str(&format!("{pad}  \"wall_ns\": {}", self.wall_ns));
        if let Some(r) = self.rows_in {
            out.push_str(&format!(",\n{pad}  \"rows_in\": {r}"));
        }
        if let Some(r) = self.rows_out {
            out.push_str(&format!(",\n{pad}  \"rows_out\": {r}"));
        }
        if let Some(c) = self.cache {
            out.push_str(&format!(",\n{pad}  \"cache\": \"{}\"", c.as_str()));
        }
        if !self.notes.is_empty() {
            out.push_str(&format!(",\n{pad}  \"notes\": {{"));
            for (i, (k, v)) in self.notes.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(k), json_string(v)));
            }
            out.push('}');
        }
        if !self.children.is_empty() {
            out.push_str(&format!(",\n{pad}  \"children\": [\n"));
            for (i, c) in self.children.iter().enumerate() {
                c.json_into(out, indent + 2);
                if i + 1 < self.children.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&format!("{pad}  ]"));
        }
        out.push_str(&format!("\n{pad}}}"));
    }

    /// Depth-first `name` sequence of the subtree — the profile's
    /// *structure*, independent of timings. Equal structures across
    /// thread counts is the determinism property tests assert.
    pub fn stage_names(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len());
        self.collect_names(&mut out, 0);
        out
    }

    fn collect_names(&self, out: &mut Vec<String>, depth: usize) {
        out.push(format!("{}{}", "  ".repeat(depth), self.name));
        for c in &self.children {
            c.collect_names(out, depth + 1);
        }
    }
}

/// A completed per-query profile: a label (usually the query text) plus
/// the root stages in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// What was profiled, e.g. the query string.
    pub label: String,
    /// The request's trace id (32-or-fewer hex digits), when the query
    /// ran under one — stamped by the server/CLI edge, never minted
    /// here.
    pub trace_id: Option<String>,
    /// Top-level stages in execution order.
    pub roots: Vec<ProfileNode>,
}

impl QueryProfile {
    /// An empty profile with the given label — what a disabled recorder
    /// "produces".
    pub fn empty(label: impl Into<String>) -> Self {
        QueryProfile {
            label: label.into(),
            trace_id: None,
            roots: Vec::new(),
        }
    }

    /// Total wall time across root stages, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|n| n.wall_ns).sum()
    }

    /// Total number of stages in the tree.
    pub fn len(&self) -> usize {
        self.roots.iter().map(ProfileNode::len).sum()
    }

    /// True when no stage was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Depth-first stage-name listing (indented), spanning all roots.
    pub fn stage_names(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.len());
        for r in &self.roots {
            r.collect_names(&mut out, 0);
        }
        out
    }

    /// Human-readable timing tree: one line per stage with duration,
    /// share of total, and annotations.
    pub fn render(&self) -> String {
        let total = self.total_ns();
        let mut out = format!("profile: {}  (total {})\n", self.label, fmt_ns(total));
        for r in &self.roots {
            r.render_into(&mut out, 0, total);
        }
        out
    }

    /// The profile as a JSON object (hand-rolled; the workspace carries
    /// no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"label\": {},\n", json_string(&self.label)));
        if let Some(id) = &self.trace_id {
            out.push_str(&format!("  \"trace_id\": {},\n", json_string(id)));
        }
        out.push_str(&format!("  \"total_ns\": {},\n", self.total_ns()));
        out.push_str("  \"stages\": [\n");
        for (i, r) in self.roots.iter().enumerate() {
            r.json_into(&mut out, 2);
            if i + 1 < self.roots.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Escapes a string as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    json_string_into(&mut out, s);
    out
}

/// Appends `s` onto `out` as a JSON string literal, quotes and escapes
/// included, without allocating — the hot-path form of [`json_string`]
/// used by the access logger.
pub fn json_string_into(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryProfile {
        let mut root = ProfileNode::new("differentiate");
        root.wall_ns = 3_000;
        let mut child = ProfileNode::new("textindex.search");
        child.wall_ns = 1_000;
        child.rows_out = Some(12);
        child.notes.push(("terms".into(), "2".into()));
        root.children.push(child);
        let mut explore = ProfileNode::new("explore");
        explore.wall_ns = 7_000;
        explore.cache = Some(CacheOutcome::Hit);
        QueryProfile {
            label: "columbus lcd".into(),
            trace_id: None,
            roots: vec![root, explore],
        }
    }

    #[test]
    fn totals_and_structure() {
        let p = sample();
        assert_eq!(p.total_ns(), 10_000);
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.stage_names(),
            vec!["differentiate", "  textindex.search", "explore"]
        );
    }

    #[test]
    fn render_contains_stages_and_annotations() {
        let r = sample().render();
        assert!(r.contains("differentiate"));
        assert!(r.contains("textindex.search"));
        assert!(r.contains("out=12"));
        assert!(r.contains("terms=2"));
        assert!(r.contains("cache=hit"));
        assert!(r.contains("total 10.0 µs"));
    }

    #[test]
    fn json_roundtrip_shape() {
        let j = sample().to_json();
        assert!(j.contains("\"label\": \"columbus lcd\""));
        assert!(j.contains("\"total_ns\": 10000"));
        assert!(j.contains("\"name\": \"textindex.search\""));
        assert!(j.contains("\"rows_out\": 12"));
        assert!(j.contains("\"cache\": \"hit\""));
        assert!(j.contains("\"notes\": {\"terms\": \"2\"}"));
    }

    #[test]
    fn json_carries_trace_id_when_present() {
        let mut p = sample();
        assert!(!p.to_json().contains("trace_id"));
        p.trace_id = Some("deadbeef".into());
        assert!(p.to_json().contains("\"trace_id\": \"deadbeef\""));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.200 s");
    }
}
