//! Zero-dependency structured logging: one JSON object per line, written
//! to stderr, a file, or any sink.
//!
//! The logger is built for the server's hot path: each event is formatted
//! completely *outside* the sink mutex, then written with a single
//! `write_all`, so the critical section is one syscall long and lines
//! from concurrent workers never interleave. A disabled logger
//! short-circuits on an `Option` check before any formatting happens —
//! the same single-branch contract the rest of `kdap-obs` keeps.

use std::cell::RefCell;
use std::fmt::{self, Write as _};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::profile::json_string_into;

thread_local! {
    /// Per-thread line buffer, reused across events so a steady-state
    /// logger allocates nothing per call.
    static LINE_BUF: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Severity of a log event, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Engine-internal detail.
    Debug,
    /// Normal operational events (access records).
    Info,
    /// Degraded but handled conditions (governor breaches, 4xx).
    Warn,
    /// Failures (5xx, I/O errors).
    Error,
}

impl LogLevel {
    fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }
}

/// One field value in a log event.
#[derive(Debug, Clone)]
pub enum LogValue {
    /// A string, JSON-escaped on render.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl LogValue {
    fn render_into(&self, out: &mut String) {
        match self {
            LogValue::Str(s) => json_string_into(out, s),
            LogValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            LogValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            LogValue::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            LogValue::F64(_) => out.push_str("null"),
            LogValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        }
    }
}

impl From<&str> for LogValue {
    fn from(v: &str) -> Self {
        LogValue::Str(v.to_string())
    }
}

impl From<String> for LogValue {
    fn from(v: String) -> Self {
        LogValue::Str(v)
    }
}

impl From<u64> for LogValue {
    fn from(v: u64) -> Self {
        LogValue::U64(v)
    }
}

impl From<u16> for LogValue {
    fn from(v: u16) -> Self {
        LogValue::U64(u64::from(v))
    }
}

impl From<usize> for LogValue {
    fn from(v: usize) -> Self {
        LogValue::U64(v as u64)
    }
}

impl From<i64> for LogValue {
    fn from(v: i64) -> Self {
        LogValue::I64(v)
    }
}

impl From<f64> for LogValue {
    fn from(v: f64) -> Self {
        LogValue::F64(v)
    }
}

impl From<bool> for LogValue {
    fn from(v: bool) -> Self {
        LogValue::Bool(v)
    }
}

/// A JSONL event logger. Disabled loggers cost one branch per call;
/// enabled loggers serialize outside the sink lock and write each event
/// as exactly one line.
pub struct JsonLogger {
    sink: Option<Mutex<Box<dyn Write + Send>>>,
    min_level: LogLevel,
    dropped: AtomicU64,
}

impl fmt::Debug for JsonLogger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLogger")
            .field("enabled", &self.sink.is_some())
            .field("min_level", &self.min_level)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl JsonLogger {
    /// A logger that discards everything after a single branch.
    pub fn disabled() -> Self {
        JsonLogger {
            sink: None,
            min_level: LogLevel::Info,
            dropped: AtomicU64::new(0),
        }
    }

    /// Logs to standard error.
    pub fn to_stderr() -> Self {
        JsonLogger::to_writer(Box::new(io::stderr()))
    }

    /// Logs to the file at `path` (created or appended to).
    pub fn to_file(path: &str) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonLogger::to_writer(Box::new(file)))
    }

    /// Logs to an arbitrary sink — how tests capture output and how the
    /// overhead bench measures the formatting path without I/O.
    pub fn to_writer(sink: Box<dyn Write + Send>) -> Self {
        JsonLogger {
            sink: Some(Mutex::new(sink)),
            min_level: LogLevel::Info,
            dropped: AtomicU64::new(0),
        }
    }

    /// Builds a logger from a `--log` flag value: `None` disables,
    /// `"stderr"` targets standard error, anything else is a file path.
    pub fn from_spec(spec: Option<&str>) -> io::Result<Self> {
        match spec {
            None => Ok(JsonLogger::disabled()),
            Some("stderr") => Ok(JsonLogger::to_stderr()),
            Some(path) => JsonLogger::to_file(path),
        }
    }

    /// Drops events below `level`.
    pub fn with_min_level(mut self, level: LogLevel) -> Self {
        self.min_level = level;
        self
    }

    /// True when events are being written anywhere.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Events lost to sink write errors since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Writes one event as a single JSONL line:
    /// `{"ts_ms": …, "level": …, "event": …, <fields>}`. Field keys are
    /// JSON-escaped; insertion order is preserved. No-op when disabled
    /// or below the minimum level.
    pub fn log(&self, level: LogLevel, event: &str, fields: &[(&str, LogValue)]) {
        let Some(sink) = &self.sink else {
            return;
        };
        if level < self.min_level {
            return;
        }
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        // Format into a reused per-thread buffer: a steady-state logger
        // allocates nothing per event, and the sink lock still spans
        // exactly one write_all.
        LINE_BUF.with(|buf| {
            let mut line = buf.borrow_mut();
            line.clear();
            let _ = write!(
                line,
                "{{\"ts_ms\": {ts_ms}, \"level\": \"{}\", \"event\": ",
                level.as_str()
            );
            json_string_into(&mut line, event);
            for (k, v) in fields {
                line.push_str(", ");
                json_string_into(&mut line, k);
                line.push_str(": ");
                v.render_into(&mut line);
            }
            line.push_str("}\n");
            let mut guard = sink.lock().unwrap_or_else(|e| e.into_inner());
            if guard.write_all(line.as_bytes()).is_err() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    /// [`JsonLogger::log`] at `Info`.
    pub fn info(&self, event: &str, fields: &[(&str, LogValue)]) {
        self.log(LogLevel::Info, event, fields);
    }

    /// [`JsonLogger::log`] at `Warn`.
    pub fn warn(&self, event: &str, fields: &[(&str, LogValue)]) {
        self.log(LogLevel::Warn, event, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A sink that appends into a shared buffer.
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Buf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn events_render_as_one_json_line_each() {
        let buf = Buf::default();
        let log = JsonLogger::to_writer(Box::new(buf.clone()));
        log.info(
            "access",
            &[
                ("tenant", "ebiz".into()),
                ("status", 200u16.into()),
                ("latency_ns", 12_345u64.into()),
                ("breach", false.into()),
            ],
        );
        log.warn("governor", &[("kind", "timeout".into())]);
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\": \"access\""), "{text}");
        assert!(lines[0].contains("\"tenant\": \"ebiz\""), "{text}");
        assert!(lines[0].contains("\"status\": 200"), "{text}");
        assert!(lines[0].contains("\"breach\": false"), "{text}");
        assert!(lines[0].contains("\"ts_ms\": "), "{text}");
        assert!(lines[1].contains("\"level\": \"warn\""), "{text}");
        for line in &lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn strings_are_escaped() {
        let buf = Buf::default();
        let log = JsonLogger::to_writer(Box::new(buf.clone()));
        log.info("q", &[("kw", "say \"hi\"\nthere".into())]);
        assert!(buf.text().contains("\"kw\": \"say \\\"hi\\\"\\nthere\""));
    }

    #[test]
    fn min_level_filters() {
        let buf = Buf::default();
        let log = JsonLogger::to_writer(Box::new(buf.clone())).with_min_level(LogLevel::Warn);
        log.info("quiet", &[]);
        log.warn("loud", &[]);
        let text = buf.text();
        assert!(!text.contains("quiet"));
        assert!(text.contains("loud"));
    }

    #[test]
    fn disabled_logger_writes_nothing() {
        let log = JsonLogger::disabled();
        assert!(!log.is_enabled());
        log.info("access", &[("tenant", "ebiz".into())]);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn from_spec_maps_flag_values() {
        assert!(!JsonLogger::from_spec(None).unwrap().is_enabled());
        assert!(JsonLogger::from_spec(Some("stderr")).unwrap().is_enabled());
        let dir = std::env::temp_dir().join("kdap_log_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let path = path.to_str().unwrap();
        let log = JsonLogger::from_spec(Some(path)).unwrap();
        log.info("hello", &[]);
        drop(log);
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"event\": \"hello\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn non_finite_floats_render_null() {
        let buf = Buf::default();
        let log = JsonLogger::to_writer(Box::new(buf.clone()));
        log.info("f", &[("ok", 1.5f64.into()), ("bad", f64::NAN.into())]);
        let text = buf.text();
        assert!(text.contains("\"ok\": 1.5"), "{text}");
        assert!(text.contains("\"bad\": null"), "{text}");
    }
}
