//! Zero-dependency structured tracing and metrics for the KDAP engine.
//!
//! Three pieces, one handle:
//!
//! * **[`Obs`]** — the handle threaded through every layer. It wraps
//!   `Option<Arc<Recorder>>`; the [`Obs::disabled`] handle turns every
//!   operation into a single `None` check, so instrumented code costs
//!   nothing measurable when observability is off (the contract the
//!   `exp_obs` bench verifies: bit-identical results, ≤2% overhead).
//! * **Metrics** — named atomic [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s (p50/p95/p99 as deterministic
//!   bucket-upper-bound estimates; merge is bucket addition, hence
//!   associative across per-thread partials).
//! * **Profiles** — a per-query [`QueryProfile`] tree built from a span
//!   stack on the coordinating thread. Parallel workers never open
//!   spans; they measure raw durations which the coordinator records as
//!   leaves in chunk/step order, so the tree *structure* is identical at
//!   any thread count.
//!
//! ```
//! use kdap_obs::{span, LeafData, Obs};
//!
//! let obs = Obs::enabled();
//! obs.start_profile("columbus lcd");
//! {
//!     let s = span!(obs, "semijoin", table = "STORES");
//!     s.rows_out(42);
//!     obs.leaf("chunk", LeafData { wall_ns: 10, ..LeafData::default() });
//! }
//! let profile = obs.take_profile().unwrap();
//! assert_eq!(profile.stage_names(), vec!["semijoin", "  chunk"]);
//! println!("{}", profile.render());
//! ```

#![warn(missing_docs)]

mod export;
mod ledger;
mod log;
mod metrics;
mod profile;
mod recorder;
mod trace;

pub use export::{
    chrome_trace, lint_exposition, snapshot_json, PrometheusExport, PROMETHEUS_CONTENT_TYPE,
};
pub use ledger::{LedgerEntry, SlowQueryLedger};
pub use log::{JsonLogger, LogLevel, LogValue};
pub use metrics::{
    CacheCounters, Counter, Gauge, Histogram, HistogramSummary, Metrics, MetricsSnapshot, N_BUCKETS,
};
pub use profile::{fmt_ns, json_string, CacheOutcome, ProfileNode, QueryProfile};
pub use recorder::{LeafData, Obs, Recorder, Span, Timer};
pub use trace::TraceId;

/// Opens a span on an [`Obs`] handle, optionally annotating it with
/// `key = value` notes:
///
/// ```
/// # use kdap_obs::{span, Obs};
/// # let obs = Obs::enabled();
/// # obs.start_profile("q");
/// let _s = span!(obs, "semijoin");
/// let _t = span!(obs, "scan", table = "FACTS", chunks = 4);
/// ```
///
/// Values go through `ToString`. On a disabled handle (or outside an
/// active profile) the span is inert and the notes are never formatted.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name)
    };
    ($obs:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let s = $obs.span($name);
        $(s.note(stringify!($key), $value);)+
        s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_macro_records_notes() {
        let obs = Obs::enabled();
        obs.start_profile("q");
        {
            let _s = span!(obs, "scan", table = "FACTS", chunks = 4);
        }
        let p = obs.take_profile().unwrap();
        assert_eq!(p.roots[0].name, "scan");
        assert_eq!(
            p.roots[0].notes,
            vec![
                ("table".to_string(), "FACTS".to_string()),
                ("chunks".to_string(), "4".to_string())
            ]
        );
    }

    #[test]
    fn span_macro_is_inert_when_disabled() {
        let obs = Obs::disabled();
        let _s = span!(obs, "scan", table = "FACTS");
        assert!(obs.take_profile().is_none());
    }
}
