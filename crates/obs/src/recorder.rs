//! The recorder: an [`Obs`] handle cloned into every layer of the
//! engine, a span stack that builds [`QueryProfile`] trees, and timers
//! that cost nothing when observability is off.
//!
//! # Zero cost when disabled
//!
//! `Obs` wraps `Option<Arc<Recorder>>`. The disabled handle is `None`;
//! every operation checks that first and returns immediately — no clock
//! read, no allocation, no lock. [`Obs::timer`] on a disabled handle
//! skips `Instant::now()` entirely and reports 0 ns.
//!
//! # Deterministic profile structure
//!
//! Only the coordinating thread opens spans. Parallel workers measure
//! raw durations and hand them back; the coordinator records them as
//! completed leaves (via [`Obs::leaf`]) in chunk/step order. The shape of
//! the profile tree is therefore a pure function of the query and data —
//! identical for any thread count — which the equivalence tests assert.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{Counter, Histogram, Metrics, MetricsSnapshot};
use crate::profile::{CacheOutcome, ProfileNode, QueryProfile};

/// Data of one completed leaf stage, recorded post-hoc by the
/// coordinating thread (typically a per-chunk or per-step measurement
/// taken on a worker).
#[derive(Debug, Clone, Default)]
pub struct LeafData {
    /// Wall-clock nanoseconds the stage took.
    pub wall_ns: u64,
    /// Rows entering the stage.
    pub rows_in: Option<u64>,
    /// Rows leaving the stage.
    pub rows_out: Option<u64>,
    /// Cache outcome, if a cache was consulted.
    pub cache: Option<CacheOutcome>,
    /// Free-form `key=value` annotations.
    pub notes: Vec<(String, String)>,
}

/// Span-stack state guarded by one mutex: an arena of nodes plus the
/// stack of currently-open span indices.
#[derive(Debug, Default)]
struct ProfileState {
    label: String,
    nodes: Vec<ProfileNode>,
    /// Children of `nodes[i]`, as arena indices; index 0 is unused
    /// (nodes[0] exists only when a profile is open).
    children: Vec<Vec<usize>>,
    /// Arena indices of roots, in open order.
    roots: Vec<usize>,
    /// Open spans, outermost first.
    stack: Vec<usize>,
    active: bool,
}

impl ProfileState {
    fn push_node(&mut self, node: ProfileNode) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(node);
        self.children.push(Vec::new());
        match self.stack.last() {
            Some(&parent) => self.children[parent].push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    fn assemble(&mut self) -> QueryProfile {
        fn build(state: &ProfileState, idx: usize) -> ProfileNode {
            let mut n = state.nodes[idx].clone();
            n.children = state.children[idx]
                .iter()
                .map(|&c| build(state, c))
                .collect();
            n
        }
        let roots = self.roots.iter().map(|&r| build(self, r)).collect();
        let label = std::mem::take(&mut self.label);
        self.nodes.clear();
        self.children.clear();
        self.roots.clear();
        self.stack.clear();
        self.active = false;
        QueryProfile {
            label,
            trace_id: None,
            roots,
        }
    }
}

/// The enabled recorder: a metrics registry plus the span-stack state.
#[derive(Debug, Default)]
pub struct Recorder {
    metrics: Metrics,
    profile: Mutex<ProfileState>,
    /// Mirror of `ProfileState::active`, readable without the mutex —
    /// the flag that lets span/leaf calls on sessions that are *not*
    /// currently profiling return after one atomic load instead of a
    /// lock round-trip. The mutex stays the authority: callers that
    /// pass this check re-verify `active` under the lock.
    profiling: AtomicBool,
}

fn lock(m: &Mutex<ProfileState>) -> std::sync::MutexGuard<'_, ProfileState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The observability handle threaded through the engine. Cheap to clone
/// (an `Option<Arc>`); the [`Obs::disabled`] handle makes every
/// operation a no-op after a single branch.
#[derive(Debug, Clone, Default)]
pub struct Obs(Option<Arc<Recorder>>);

impl Obs {
    /// The no-op handle: every operation returns immediately.
    pub fn disabled() -> Self {
        Obs(None)
    }

    /// A live handle backed by a fresh recorder.
    pub fn enabled() -> Self {
        Obs(Some(Arc::new(Recorder::default())))
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Begins collecting a [`QueryProfile`] labelled `label`. Replaces
    /// any profile in progress. No-op when disabled.
    pub fn start_profile(&self, label: &str) {
        if let Some(rec) = &self.0 {
            let mut st = lock(&rec.profile);
            st.label = label.to_string();
            st.nodes.clear();
            st.children.clear();
            st.roots.clear();
            st.stack.clear();
            st.active = true;
            rec.profiling.store(true, Ordering::Relaxed);
        }
    }

    /// Finishes and returns the profile started by
    /// [`Obs::start_profile`]. `None` when disabled or when no profile
    /// was started.
    pub fn take_profile(&self) -> Option<QueryProfile> {
        let rec = self.0.as_ref()?;
        let mut st = lock(&rec.profile);
        if !st.active {
            return None;
        }
        let profile = st.assemble();
        rec.profiling.store(false, Ordering::Relaxed);
        Some(profile)
    }

    /// True while a profile is being collected — the cheap pre-check
    /// (one atomic load) hot paths use to skip building span/leaf data
    /// that would be discarded anyway. Always `false` when disabled.
    pub fn is_profiling(&self) -> bool {
        match &self.0 {
            Some(rec) => rec.profiling.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Opens a span named `name` on the coordinating thread. Returns a
    /// guard that closes the span (recording its wall time) on drop.
    /// Disabled handles and handles without an active profile return an
    /// inert guard.
    pub fn span(&self, name: &str) -> Span {
        if let Some(rec) = &self.0 {
            if !rec.profiling.load(Ordering::Relaxed) {
                return Span {
                    obs: None,
                    idx: 0,
                    start: None,
                };
            }
            let mut st = lock(&rec.profile);
            if st.active {
                let idx = st.push_node(ProfileNode::new(name));
                st.stack.push(idx);
                return Span {
                    obs: Some(rec.clone()),
                    idx,
                    start: Some(Instant::now()),
                };
            }
        }
        Span {
            obs: None,
            idx: 0,
            start: None,
        }
    }

    /// Records a completed leaf stage under the currently-open span.
    /// This is how parallel work enters the profile: workers measure,
    /// the coordinator calls `leaf` in deterministic order. No-op when
    /// disabled or no profile is active.
    pub fn leaf(&self, name: &str, data: LeafData) {
        if let Some(rec) = &self.0 {
            if !rec.profiling.load(Ordering::Relaxed) {
                return;
            }
            let mut st = lock(&rec.profile);
            if st.active {
                let mut node = ProfileNode::new(name);
                node.wall_ns = data.wall_ns;
                node.rows_in = data.rows_in;
                node.rows_out = data.rows_out;
                node.cache = data.cache;
                node.notes = data.notes;
                st.push_node(node);
            }
        }
    }

    /// Starts a timer. Disabled handles skip the clock read and report
    /// 0 ns — the property the overhead bench measures.
    pub fn timer(&self) -> Timer {
        match &self.0 {
            Some(_) => Timer(Some(Instant::now())),
            None => Timer(None),
        }
    }

    /// Adds `n` to the counter named `name`. No-op when disabled.
    pub fn inc(&self, name: &str, n: u64) {
        if let Some(rec) = &self.0 {
            rec.metrics.counter(name).add(n);
        }
    }

    /// Records a sample into the histogram named `name`. No-op when
    /// disabled.
    pub fn record_ns(&self, name: &str, ns: u64) {
        if let Some(rec) = &self.0 {
            rec.metrics.histogram(name).record(ns);
        }
    }

    /// Sets the gauge named `name`. No-op when disabled.
    pub fn gauge(&self, name: &str, v: i64) {
        if let Some(rec) = &self.0 {
            rec.metrics.gauge(name).set(v);
        }
    }

    /// The counter handle, for hoisting out of hot loops. `None` when
    /// disabled.
    pub fn counter_handle(&self, name: &str) -> Option<Arc<Counter>> {
        self.0.as_ref().map(|rec| rec.metrics.counter(name))
    }

    /// The histogram handle, for hoisting out of hot loops. `None` when
    /// disabled.
    pub fn histogram_handle(&self, name: &str) -> Option<Arc<Histogram>> {
        self.0.as_ref().map(|rec| rec.metrics.histogram(name))
    }

    /// A snapshot of every metric. Empty when disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.0 {
            Some(rec) => rec.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Every histogram with its live handle, name-sorted — the raw
    /// log2 buckets the Prometheus exporter renders as native histogram
    /// series (snapshots only carry percentile summaries). Empty when
    /// disabled.
    pub fn histogram_entries(&self) -> Vec<(String, Arc<Histogram>)> {
        match &self.0 {
            Some(rec) => rec.metrics.histogram_entries(),
            None => Vec::new(),
        }
    }
}

/// Guard of an open span; closes it on drop, recording wall time.
#[derive(Debug)]
pub struct Span {
    obs: Option<Arc<Recorder>>,
    idx: usize,
    start: Option<Instant>,
}

impl Span {
    /// Adds a `key=value` annotation to the span. No-op on inert spans.
    pub fn note(&self, key: &str, value: impl ToString) {
        if let Some(rec) = &self.obs {
            let mut st = lock(&rec.profile);
            let idx = self.idx;
            if idx < st.nodes.len() {
                st.nodes[idx]
                    .notes
                    .push((key.to_string(), value.to_string()));
            }
        }
    }

    /// Sets the span's rows-in count.
    pub fn rows_in(&self, rows: u64) {
        if let Some(rec) = &self.obs {
            let mut st = lock(&rec.profile);
            let idx = self.idx;
            if idx < st.nodes.len() {
                st.nodes[idx].rows_in = Some(rows);
            }
        }
    }

    /// Sets the span's rows-out count.
    pub fn rows_out(&self, rows: u64) {
        if let Some(rec) = &self.obs {
            let mut st = lock(&rec.profile);
            let idx = self.idx;
            if idx < st.nodes.len() {
                st.nodes[idx].rows_out = Some(rows);
            }
        }
    }

    /// Sets the span's cache outcome.
    pub fn cache(&self, outcome: CacheOutcome) {
        if let Some(rec) = &self.obs {
            let mut st = lock(&rec.profile);
            let idx = self.idx;
            if idx < st.nodes.len() {
                st.nodes[idx].cache = Some(outcome);
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.obs.take() {
            let ns = self
                .start
                .map(|t| t.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            let mut st = lock(&rec.profile);
            let idx = self.idx;
            if idx < st.nodes.len() {
                st.nodes[idx].wall_ns = ns;
            }
            if st.stack.last() == Some(&idx) {
                st.stack.pop();
            }
        }
    }
}

/// A started (or inert) timer; [`Timer::stop`] returns elapsed
/// nanoseconds, 0 for inert timers.
#[derive(Debug, Clone, Copy)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Elapsed nanoseconds since the timer started; 0 when the handle
    /// was disabled.
    pub fn stop(&self) -> u64 {
        match self.0 {
            Some(t) => t.elapsed().as_nanos() as u64,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.start_profile("q");
        {
            let s = obs.span("stage");
            s.note("k", "v");
            s.rows_out(3);
        }
        obs.leaf("leaf", LeafData::default());
        obs.inc("c", 1);
        obs.record_ns("h", 5);
        assert_eq!(obs.timer().stop(), 0);
        assert!(obs.take_profile().is_none());
        assert!(obs.counter_handle("c").is_none());
        let snap = obs.metrics_snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn span_stack_builds_tree_in_order() {
        let obs = Obs::enabled();
        obs.start_profile("columbus lcd");
        {
            let outer = obs.span("differentiate");
            outer.rows_out(10);
            {
                let inner = obs.span("textindex.search");
                inner.note("terms", 2);
            }
            obs.leaf(
                "rank",
                LeafData {
                    rows_in: Some(10),
                    ..LeafData::default()
                },
            );
        }
        {
            let _e = obs.span("explore");
        }
        let p = obs.take_profile().expect("profile active");
        assert_eq!(p.label, "columbus lcd");
        assert_eq!(
            p.stage_names(),
            vec!["differentiate", "  textindex.search", "  rank", "explore"]
        );
        assert_eq!(p.roots[0].rows_out, Some(10));
        assert_eq!(
            p.roots[0].children[0].notes,
            vec![("terms".to_string(), "2".to_string())]
        );
        assert_eq!(p.roots[0].children[1].rows_in, Some(10));
        // Taking again returns None until a new profile starts.
        assert!(obs.take_profile().is_none());
    }

    #[test]
    fn profiling_flag_tracks_start_and_take() {
        let obs = Obs::enabled();
        assert!(!obs.is_profiling());
        obs.start_profile("q");
        assert!(obs.is_profiling());
        obs.take_profile();
        assert!(!obs.is_profiling());
        assert!(!Obs::disabled().is_profiling());
    }

    #[test]
    fn spans_without_active_profile_are_inert() {
        let obs = Obs::enabled();
        {
            let s = obs.span("orphan");
            s.note("k", "v");
        }
        assert!(obs.take_profile().is_none());
        obs.start_profile("q");
        let p = obs.take_profile().unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn metrics_flow_through_handle() {
        let obs = Obs::enabled();
        obs.inc("searches", 2);
        obs.record_ns("lat", 100);
        obs.record_ns("lat", 200);
        obs.gauge("cap", 64);
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.counters["searches"], 2);
        assert_eq!(snap.gauges["cap"], 64);
        assert_eq!(snap.histograms["lat"].count, 2);
        let h = obs.histogram_handle("lat").unwrap();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn restart_profile_resets_state() {
        let obs = Obs::enabled();
        obs.start_profile("first");
        let _ = obs.span("a");
        obs.start_profile("second");
        {
            let _ = obs.span("b");
        }
        let p = obs.take_profile().unwrap();
        assert_eq!(p.label, "second");
        assert_eq!(p.stage_names(), vec!["b"]);
    }
}
