//! Workspace-level facade re-exporting the KDAP crates, used by the
//! `examples/` binaries and the cross-crate integration tests.
//!
//! ```
//! use kdap_suite::core::Kdap;
//! use kdap_suite::datagen::{build_ebiz, EbizScale};
//!
//! let kdap = Kdap::builder(build_ebiz(EbizScale::small(), 7).unwrap()).build().unwrap();
//! let interpretations = kdap.interpret("seattle");
//! assert!(!interpretations.is_empty());
//! ```

pub use kdap_core as core;
pub use kdap_datagen as datagen;
pub use kdap_obs as obs;
pub use kdap_query as query;
pub use kdap_server as server;
pub use kdap_textindex as textindex;
pub use kdap_warehouse as warehouse;
