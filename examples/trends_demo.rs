//! KDAP subsumes Google Trends (related work, §2).
//!
//! The paper positions Google Trends as "the only system that provides
//! some rudimentary KDAP functionality": keyword search over a query log
//! with aggregated volume shown over time and location. This demo runs a
//! Trends-style session on a query-log warehouse — then shows what Trends
//! cannot do: dynamically ranked facets beyond time/location, drill-down,
//! and interestingness-driven attribute selection.
//!
//! Run: `cargo run --release --example trends_demo`

use kdap_suite::core::interest::InterestMode;
use kdap_suite::core::{render_exploration, Kdap};
use kdap_suite::datagen::{build_trends, TrendsScale};

fn main() {
    println!("building the query-log warehouse…");
    let wh = build_trends(TrendsScale::full(), 42).expect("generator is valid");
    let mut kdap = Kdap::builder(wh).build().expect("measure defined");
    kdap.facet_config_mut().top_k_attrs = 2;
    kdap.facet_config_mut().top_k_instances = 12;

    // --- The Google Trends experience: term → volume over time/place ---
    let query = "christmas gifts";
    println!("\n=== Trends-style lookup: \"{query}\" ===\n");
    let ranked = kdap.interpret(&format!("\"{query}\""));
    let net = &ranked.first().expect("term found").net;
    println!("interpretation: {}\n", net.display(kdap.warehouse()));
    let ex = kdap.explore(net).expect("star net evaluates");
    // The Time panel is the classic Trends curve, as a facet.
    if let Some(time) = ex.panels.iter().find(|p| p.dimension == "Time") {
        for attr in &time.attrs {
            if attr.name.ends_with("MonthName") {
                println!("search volume by month (the Trends curve):");
                let max = attr
                    .entries
                    .iter()
                    .map(|e| e.aggregate)
                    .fold(0.0f64, f64::max)
                    .max(1.0);
                let mut entries = attr.entries.clone();
                entries.sort_by(|a, b| a.label.cmp(&b.label));
                for e in &entries {
                    let bar = "█".repeat((28.0 * e.aggregate / max) as usize);
                    println!("  {:<10} {:>10.0} {}", e.label, e.aggregate, bar);
                }
            }
        }
    }

    // --- Beyond Trends: interestingness-ranked facets ---
    println!("\n=== what Google Trends cannot do ===\n");
    println!("surprise-ranked facets of the \"{query}\" subspace:\n");
    println!("{}", render_exploration(&ex));

    kdap.facet_config_mut().mode = InterestMode::Bellwether;
    let ex2 = kdap.explore(net).expect("star net evaluates");
    let bell = ex2
        .panels
        .iter()
        .flat_map(|p| p.attrs.iter())
        .filter(|a| !a.promoted)
        .max_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    if let Some(attr) = bell {
        println!(
            "best bellwether facet: {} (corr {:+.3}) — the partition whose\n\
             volume tracks overall Shopping searches most closely",
            attr.name, attr.correlation
        );
    }
}
