//! A guided tour of every ambiguity the paper's running example (EBiz,
//! Figure 2) was designed to exhibit:
//!
//! 1. attribute-instance ambiguity — "Columbus" as city vs. holiday;
//! 2. join-path ambiguity — the shared Location table reached via the
//!    store, the buyer account, or the seller account;
//! 3. role disambiguation — "Seattle Portland TV": customers from one
//!    city buying in stores of another;
//! 4. phrase queries — "San" + "Jose" merging into the single city
//!    instance "San Jose" (§4.3);
//! 5. fact-table hits — keywords matching the transaction-item comment
//!    select fact points directly (§4.2).
//!
//! Run: `cargo run --release --example ebiz_walkthrough`

use kdap_suite::core::Kdap;
use kdap_suite::datagen::{build_ebiz, EbizScale};

fn main() {
    println!("building EBiz...");
    let wh = build_ebiz(EbizScale::full(), 42).expect("generator is valid");
    let kdap = Kdap::builder(wh).build().expect("warehouse has a measure");
    let wh = kdap.warehouse();

    // 1 + 2: "Columbus" alone.
    println!("\n=== 1/2. \"Columbus\": instance + join-path ambiguity ===");
    let ranked = kdap.interpret("Columbus");
    for (i, r) in ranked.iter().enumerate() {
        println!("  #{} [{:.4}] {}", i + 1, r.score, r.net.display(wh));
    }
    println!(
        "  → {} interpretations: city via store / buyer / seller, plus the holiday",
        ranked.len()
    );

    // 3: role disambiguation across two cities.
    println!("\n=== 3. \"Seattle Portland TV\": buyer city × store city ===");
    let ranked = kdap.interpret("Seattle Portland TV");
    for r in ranked.iter().take(4) {
        println!("  [{:.4}] {}", r.score, r.net.display(wh));
    }
    let cross = ranked.iter().find(|r| {
        let d = r.net.display(wh);
        // One city through the store path, the other through an account
        // path: the aliased-location interpretation from §4.2.
        d.contains("Seattle")
            && d.contains("Portland")
            && d.contains("STORE → LOCATION")
            && (d.contains("(Buyer)") || d.contains("(Seller)"))
    });
    println!(
        "  cross-role interpretation (customers of one city, stores of the other): {}",
        if cross.is_some() { "present" } else { "absent" }
    );

    // 4: phrase merging.
    println!("\n=== 4. phrase queries: \"San Jose\" ===");
    let split = kdap.interpret("San Jose");
    println!("  top interpretation for `San Jose` (two keywords):");
    if let Some(r) = split.first() {
        println!("    [{:.4}] {}", r.score, r.net.display(wh));
        let merged_to_phrase = r.net.n_groups() == 1
            && r.net.constraints[0]
                .group
                .hits
                .iter()
                .any(|h| h.value.contains("San Jose"));
        println!(
            "    keywords merged into the single city instance: {}",
            if merged_to_phrase { "YES" } else { "NO" }
        );
    }

    // 5: fact-table hit groups.
    println!("\n=== 5. fact-table hits: \"holiday sale purchase\" comments ===");
    let ranked = kdap.interpret("\"holiday sale\"");
    match ranked.first() {
        Some(r) => {
            println!("  [{:.4}] {}", r.score, r.net.display(wh));
            let on_fact = r.net.constraints.iter().any(|c| c.path.is_empty());
            println!(
                "  constraint sits directly on the fact table (empty join path): {}",
                if on_fact { "YES" } else { "NO" }
            );
            let ex = kdap.explore(&r.net).expect("star net evaluates");
            println!(
                "  fact points selected: {} (revenue {:.2})",
                ex.subspace_size, ex.total_aggregate
            );
        }
        None => println!("  no interpretation found"),
    }
}
