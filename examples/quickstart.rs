//! Quickstart: the KDAP two-phase loop in a dozen lines.
//!
//! Builds the paper's EBiz e-commerce warehouse (Figure 2), asks the
//! ambiguous keyword query **"Columbus LCD"**, shows the ranked
//! interpretations (Columbus the city — reached via store, buyer or
//! seller — vs. Columbus Day the holiday), then explores the top one.
//!
//! Run: `cargo run --release --example quickstart`

use kdap_suite::core::Kdap;
use kdap_suite::datagen::{build_ebiz, EbizScale};

fn main() {
    println!("building the EBiz warehouse (paper Figure 2)...");
    let wh = build_ebiz(EbizScale::full(), 42).expect("generator is valid");
    let kdap = Kdap::builder(wh).build().expect("warehouse has a measure");

    // ---- Phase 1: differentiate ------------------------------------
    let query = "Columbus LCD";
    println!("\nkeyword query: \"{query}\"\n");
    let ranked = kdap.interpret(query);
    println!("candidate interpretations (star nets): {}\n", ranked.len());
    for (i, r) in ranked.iter().take(5).enumerate() {
        println!(
            "  #{} [score {:.4}] {}",
            i + 1,
            r.score,
            r.net.display(kdap.warehouse())
        );
    }

    // ---- The user picks one; Phase 2: explore ----------------------
    let chosen = &ranked[0].net;
    println!("\nexploring interpretation #1 ...\n");
    let ex = kdap.explore(chosen).expect("star net evaluates");
    println!(
        "subspace: {} fact points, total revenue {:.2}",
        ex.subspace_size, ex.total_aggregate
    );
    for panel in &ex.panels {
        println!("\n[{} dimension]", panel.dimension);
        for attr in &panel.attrs {
            println!(
                "  {} (score {:+.3}{})",
                attr.name,
                attr.score,
                if attr.promoted { ", hit attribute" } else { "" }
            );
            for e in attr.entries.iter().take(4) {
                println!(
                    "      {:<28} {:>12.2}{}",
                    e.label,
                    e.aggregate,
                    if e.is_hit { "  ← your keyword" } else { "" }
                );
            }
        }
    }
}
