//! Surprise analysis (the paper's first OLAP application, §5 / Eq. 1):
//! find exceptions — partitions of the subspace whose aggregation trend
//! *deviates* from the roll-up background space.
//!
//! The analyst asks for Mountain Bikes sold to Californian customers and
//! lets KDAP surface the group-by attributes along which that subspace
//! behaves least like Bikes sales overall — then drills down into the
//! most surprising instance, exactly the interaction loop of §6.2.
//!
//! Run: `cargo run --release --example surprise_analysis`

use kdap_suite::core::interest::InterestMode;
use kdap_suite::core::{Kdap, StarNet};
use kdap_suite::datagen::{build_aw_online, Scale};

fn main() {
    println!("building AW_ONLINE (60k+ facts)...");
    let wh = build_aw_online(Scale::full(), 42).expect("generator is valid");
    let mut kdap = Kdap::builder(wh).build().expect("warehouse has a measure");
    kdap.facet_config_mut().mode = InterestMode::Surprise;
    kdap.facet_config_mut().top_k_attrs = 3;
    kdap.facet_config_mut().top_k_instances = 5;

    let ranked = kdap.interpret("California Mountain Bikes");
    let net = ranked.first().expect("interpretations exist").net.clone();
    println!("\ninterpretation: {}\n", net.display(kdap.warehouse()));

    let ex = kdap.explore(&net).expect("star net evaluates");
    println!(
        "subspace: {} facts, revenue {:.2}\n",
        ex.subspace_size, ex.total_aggregate
    );

    // Most surprising non-promoted attribute across all dimensions.
    let mut best: Option<(&str, &kdap_suite::core::FacetAttr)> = None;
    for panel in &ex.panels {
        for attr in panel.attrs.iter().filter(|a| !a.promoted) {
            if best.is_none() || attr.score > best.as_ref().unwrap().1.score {
                best = Some((&panel.dimension, attr));
            }
        }
    }
    let (dim, attr) = best.expect("facets were built");
    println!(
        "most surprising angle: {} in the {} dimension \
         (correlation with roll-up space: {:+.3})",
        attr.name, dim, attr.correlation
    );
    for e in &attr.entries {
        println!(
            "    {:<28} revenue {:>12.2}  deviation score {:+.4}",
            e.label, e.aggregate, e.score
        );
    }

    // Drill down: narrow the subspace to the most deviant instance by
    // refining the keyword query with it, then re-explore.
    if let Some(top_entry) = attr.entries.iter().max_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    }) {
        println!(
            "\ndrilling down into the most surprising instance: \"{}\"",
            top_entry.label
        );
        let refined_query = format!("\"{}\" \"Mountain Bikes\" California", top_entry.label);
        let refined = kdap.interpret(&refined_query);
        if let Some(r) = refined.first() {
            let ex2 = kdap.explore(&r.net).expect("star net evaluates");
            print_drilldown(&r.net, &ex2, kdap.warehouse());
        }
    }
}

fn print_drilldown(
    net: &StarNet,
    ex: &kdap_suite::core::Exploration,
    wh: &kdap_suite::warehouse::Warehouse,
) {
    println!("refined interpretation: {}", net.display(wh));
    println!(
        "refined subspace: {} facts, revenue {:.2}",
        ex.subspace_size, ex.total_aggregate
    );
    for panel in ex.panels.iter().take(2) {
        println!("  [{}]", panel.dimension);
        for attr in panel.attrs.iter().take(2) {
            let labels: Vec<&str> = attr
                .entries
                .iter()
                .take(3)
                .map(|e| e.label.as_str())
                .collect();
            println!("    {} → {}", attr.name, labels.join(" | "));
        }
    }
}
