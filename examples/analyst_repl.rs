//! Interactive KDAP session — the paper's user experience as a terminal
//! REPL: type keywords, pick an interpretation, browse dynamic facets,
//! drill down / roll up / slice, switch between surprise and bellwether
//! interestingness.
//!
//! Commands:
//!   q <keywords>      run a keyword query (differentiate phase)
//!   pick <n>          choose interpretation #n and explore it
//!   drill <n> <m>     drill into entry m of facet n of the last panel view
//!   up <n>            roll up the n-th constraint of the current net
//!   drop <n>          remove the n-th constraint (undo a slice)
//!   mode <surprise|bellwether>
//!   show              re-print the current facets
//!   help / quit
//!
//! Run: `cargo run --release --example analyst_repl` (reads stdin; pipe a
//! script for non-interactive use, e.g.
//! `printf 'q Columbus LCD\npick 1\nquit\n' | cargo run --example analyst_repl`)

use std::io::{BufRead, Write};

use kdap_suite::core::interest::InterestMode;
use kdap_suite::core::{
    drill_down, materialize, remove_constraint, roll_up, Exploration, Kdap, StarNet,
};
use kdap_suite::datagen::{build_ebiz, EbizScale};
use kdap_suite::query::paths_between;
use kdap_suite::textindex::snippet;

struct Repl {
    kdap: Kdap,
    interpretations: Vec<kdap_suite::core::RankedStarNet>,
    current: Option<StarNet>,
    exploration: Option<Exploration>,
    last_keywords: Vec<String>,
}

fn main() {
    println!("building the EBiz warehouse…");
    let wh = build_ebiz(EbizScale::full(), 42).expect("generator is valid");
    let mut repl = Repl {
        kdap: Kdap::builder(wh).build().expect("measure defined"),
        interpretations: Vec::new(),
        current: None,
        exploration: None,
        last_keywords: Vec::new(),
    };
    println!("KDAP analyst console — `help` lists commands. Try: q Columbus LCD");

    let stdin = std::io::stdin();
    loop {
        print!("kdap> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "q" | "query" => repl.query(rest),
            "pick" => repl.pick(rest),
            "drill" => repl.drill(rest),
            "up" => repl.up(rest),
            "drop" => repl.drop(rest),
            "mode" => repl.mode(rest),
            "show" => repl.show(),
            "help" => help(),
            "quit" | "exit" => break,
            other => println!("unknown command `{other}` — try `help`"),
        }
    }
    println!("bye.");
}

fn help() {
    println!(
        "  q <keywords>           differentiate: list ranked interpretations\n\
         pick <n>               explore interpretation #n\n\
         drill <facet> <entry>  drill into an entry of the shown facets\n\
         up <n>                 roll up the n-th constraint\n\
         drop <n>               remove the n-th constraint\n\
         mode surprise|bellwether\n\
         show                   re-print current facets\n\
         quit"
    );
}

impl Repl {
    fn query(&mut self, keywords: &str) {
        self.interpretations = self.kdap.interpret(keywords);
        self.last_keywords = kdap_suite::core::split_query(keywords);
        if self.interpretations.is_empty() {
            println!("no interpretation found for \"{keywords}\"");
            return;
        }
        println!("interpretations ({} total):", self.interpretations.len());
        for (i, r) in self.interpretations.iter().take(8).enumerate() {
            println!(
                "  #{:<2} [{:.4}] {}",
                i + 1,
                r.score,
                r.net.display(self.kdap.warehouse())
            );
        }
        println!("pick one with `pick <n>`.");
    }

    fn pick(&mut self, arg: &str) {
        let Ok(n) = arg.trim().parse::<usize>() else {
            println!("usage: pick <n>");
            return;
        };
        let Some(r) = self.interpretations.get(n.wrapping_sub(1)) else {
            println!("no interpretation #{n}");
            return;
        };
        self.current = Some(r.net.clone());
        self.explore();
    }

    fn explore(&mut self) {
        let Some(net) = &self.current else {
            println!("no interpretation selected — use `q` then `pick`");
            return;
        };
        let ex = match self.kdap.explore(net) {
            Ok(ex) => ex,
            Err(e) => {
                println!("explore failed: {e}");
                return;
            }
        };
        println!(
            "subspace: {} fact points · total {:.2} · constraints:",
            ex.subspace_size, ex.total_aggregate
        );
        for (i, c) in net.constraints.iter().enumerate() {
            let kws: Vec<&str> = self.last_keywords.iter().map(String::as_str).collect();
            let summary = c
                .group
                .hits
                .first()
                .map(|h| snippet(&h.value, &kws, 8))
                .unwrap_or_default();
            println!(
                "  ({}) {} = {}{}",
                i + 1,
                self.kdap.warehouse().col_name(c.group.attr),
                summary,
                if c.group.hits.len() > 1 {
                    format!(" (+{} more)", c.group.hits.len() - 1)
                } else {
                    String::new()
                }
            );
        }
        self.exploration = Some(ex);
        self.show();
    }

    fn show(&self) {
        let Some(ex) = &self.exploration else {
            println!("nothing explored yet");
            return;
        };
        let mut facet_no = 0;
        for panel in &ex.panels {
            println!("[{}]", panel.dimension);
            for attr in &panel.attrs {
                facet_no += 1;
                println!(
                    "  {facet_no}. {} (score {:+.3}{})",
                    attr.name,
                    attr.score,
                    if attr.promoted { ", hit" } else { "" }
                );
                for (ei, e) in attr.entries.iter().enumerate() {
                    println!(
                        "       {}) {:<26} {:>12.2}{}",
                        ei + 1,
                        e.label,
                        e.aggregate,
                        if e.is_hit { " ←" } else { "" }
                    );
                }
            }
        }
        println!("drill with `drill <facet#> <entry#>`.");
    }

    fn drill(&mut self, rest: &str) {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let (Some(Ok(f)), Some(Ok(e))) = (
            parts.first().map(|s| s.parse::<usize>()),
            parts.get(1).map(|s| s.parse::<usize>()),
        ) else {
            println!("usage: drill <facet#> <entry#>");
            return;
        };
        let (Some(ex), Some(net)) = (&self.exploration, &self.current) else {
            println!("nothing explored yet");
            return;
        };
        // Locate facet #f in panel order.
        let mut facet_no = 0;
        let mut target = None;
        for panel in &ex.panels {
            for attr in &panel.attrs {
                facet_no += 1;
                if facet_no == f {
                    target = Some(attr);
                }
            }
        }
        let Some(attr) = target else {
            println!("no facet #{f}");
            return;
        };
        let Some(entry) = attr.entries.get(e.wrapping_sub(1)) else {
            println!("facet #{f} has no entry #{e}");
            return;
        };
        let wh = self.kdap.warehouse();
        let Some(code) = wh
            .column(attr.attr)
            .dict()
            .and_then(|d| d.code_of(&entry.label))
        else {
            println!("numeric ranges are browsed via new queries, not drill (yet)");
            return;
        };
        let path = paths_between(wh.schema(), wh.schema().fact_table(), attr.attr.table, 8)
            .into_iter()
            .next()
            .expect("facet attrs are reachable");
        let drilled = drill_down(wh, net, attr.attr, &path, vec![code]);
        let size = materialize(wh, self.kdap.join_index(), &drilled).len();
        println!(
            "drilled into {} = {} ({} fact points)",
            attr.name, entry.label, size
        );
        self.current = Some(drilled);
        self.explore();
    }

    fn up(&mut self, arg: &str) {
        let Ok(n) = arg.trim().parse::<usize>() else {
            println!("usage: up <constraint#>");
            return;
        };
        let Some(net) = &self.current else {
            println!("nothing explored yet");
            return;
        };
        match roll_up(
            self.kdap.warehouse(),
            self.kdap.join_index(),
            net,
            n.wrapping_sub(1),
        ) {
            Some(rolled) => {
                self.current = Some(rolled);
                self.explore();
            }
            None => println!("no constraint #{n}"),
        }
    }

    fn drop(&mut self, arg: &str) {
        let Ok(n) = arg.trim().parse::<usize>() else {
            println!("usage: drop <constraint#>");
            return;
        };
        let Some(net) = &self.current else {
            println!("nothing explored yet");
            return;
        };
        match remove_constraint(net, n.wrapping_sub(1)) {
            Some(reduced) => {
                self.current = Some(reduced);
                self.explore();
            }
            None => println!("no constraint #{n}"),
        }
    }

    fn mode(&mut self, arg: &str) {
        match arg.trim() {
            "surprise" => self.kdap.facet_config_mut().mode = InterestMode::Surprise,
            "bellwether" => self.kdap.facet_config_mut().mode = InterestMode::Bellwether,
            _ => {
                println!("usage: mode surprise|bellwether");
                return;
            }
        }
        println!("interestingness mode set to {arg}");
        if self.current.is_some() {
            self.explore();
        }
    }
}
