//! Bellwether hunting (the paper's second OLAP application, after Chen et
//! al. VLDB'06): find *local* regions whose aggregates track the larger
//! region — "sales of LCDs in Columbus during January are very correlated
//! with total LCD sales".
//!
//! Same machinery as surprise analysis with the interestingness flipped:
//! facets are ranked by +correlation against the roll-up space, so the
//! partitions that mirror the global trend surface first.
//!
//! Run: `cargo run --release --example bellwether_hunt`

use kdap_suite::core::interest::InterestMode;
use kdap_suite::core::Kdap;
use kdap_suite::datagen::{build_aw_reseller, Scale};

fn main() {
    println!("building AW_RESELLER (60k+ facts)...");
    let wh = build_aw_reseller(Scale::full(), 42).expect("generator is valid");
    let mut kdap = Kdap::builder(wh).build().expect("warehouse has a measure");
    kdap.facet_config_mut().mode = InterestMode::Bellwether;
    kdap.facet_config_mut().top_k_attrs = 3;
    kdap.facet_config_mut().top_k_instances = 4;

    // The analyst zooms into one subcategory and asks: which partitions
    // of these sales behave like the whole Bikes category does?
    let query = "\"Mountain Bikes\"";
    let ranked = kdap.interpret(query);
    let net = &ranked.first().expect("interpretations exist").net;
    println!("\nquery {query} → {}", net.display(kdap.warehouse()));

    let ex = kdap.explore(net).expect("star net evaluates");
    println!(
        "subspace: {} facts, revenue {:.2}\n",
        ex.subspace_size, ex.total_aggregate
    );
    println!("bellwether candidates (facets most correlated with the Bikes roll-up):\n");

    let mut candidates: Vec<(String, String, f64)> = Vec::new();
    for panel in &ex.panels {
        for attr in panel.attrs.iter().filter(|a| !a.promoted) {
            candidates.push((panel.dimension.clone(), attr.name.clone(), attr.correlation));
        }
    }
    candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    for (dim, name, corr) in candidates.iter().take(6) {
        let verdict = if *corr > 0.9 {
            "strong bellwether"
        } else if *corr > 0.6 {
            "candidate"
        } else {
            "weak"
        };
        println!("  {corr:+.3}  {name:<48} ({dim} dimension) — {verdict}");
    }

    // Contrast with surprise mode on the same subspace: the ordering of
    // the two modes is exactly inverted.
    kdap.facet_config_mut().mode = InterestMode::Surprise;
    let ex2 = kdap.explore(net).expect("star net evaluates");
    let most_surprising = ex2
        .panels
        .iter()
        .flat_map(|p| p.attrs.iter())
        .filter(|a| !a.promoted)
        .max_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    if let Some(attr) = most_surprising {
        println!(
            "\nfor contrast, the most *surprising* facet of the same subspace is {} \
             (correlation {:+.3})",
            attr.name, attr.correlation
        );
    }
}
